//! Language inclusion, equivalence, and universality.
//!
//! Three engines decide all three questions:
//!
//! * the **on-the-fly antichain engine** ([`crate::antichain`]) — the
//!   default — searches for a counterexample lasso over word-graphs of
//!   the right operand, expanding macro-states lazily and taking its
//!   simulation quotients from the persistent
//!   [`crate::interned::QuotientCache`];
//! * the **eager antichain engine** runs the same search with both
//!   operands quotiented from scratch and the element space seeded up
//!   front — the first differential oracle;
//! * the **rank-based engine** reduces to emptiness through
//!   complementation (`L(A) ⊆ L(B)` iff `L(A) ∩ ¬L(B) = ∅`) and is
//!   kept as a second oracle and for callers that need the complement
//!   automaton itself. When `B` is all-accepting the cheap
//!   subset-construction complement is used automatically.
//!
//! [`included`], [`equivalent`], and [`universal`] dispatch on
//! `SL_INCL_ENGINE` (`onthefly`, the default, `antichain`, or `rank`),
//! read once per process; the per-engine entry points
//! ([`included_onthefly`], [`included_antichain`], [`included_rank`],
//! ...) pin an engine explicitly regardless of the environment.
//!
//! Rank-based complements are expensive, and the exhaustive verifiers
//! may call the rank engine over small corpora where the same automata
//! recur constantly. A process-wide memoizing [`ComplementCache`] —
//! sharded by [`Buchi::structural_hash`] into striped locks so
//! concurrent sessions share every complement instead of re-deriving
//! it per thread — therefore backs the rank-based deciders, with an
//! equality collision check so a lookup hashes 8 bytes instead of a
//! whole automaton. The cache's [`ComplementCacheStats`] make the
//! deciders' complement behavior observable (e.g. that
//! [`equivalent_rank`] short-circuits after a failed first inclusion
//! without ever complementing the second operand — pinned through the
//! explicit-cache entry points like [`equivalent_rank_with_cache`],
//! which measure an isolated instance instead of the shared shards).

use crate::antichain::{
    antichain_stats, equivalent_antichain, equivalent_antichain_budgeted, equivalent_onthefly,
    equivalent_onthefly_budgeted, included_antichain, included_antichain_budgeted,
    included_onthefly, included_onthefly_budgeted, universal_antichain, universal_onthefly,
    AntichainStats,
};
use crate::automaton::Buchi;
use crate::complement::{complement, complement_budgeted, ComplementBudgetExceeded};
use crate::empty::{find_accepted_word, is_empty};
use crate::interned::{shared_quotient_cache_stats, QuotientCacheStats};
use crate::ops::intersection;
use sl_omega::LassoWord;
use sl_support::{fault, Budget, SlError};
use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Which engine backs the dispatching deciders [`included`],
/// [`equivalent`], and [`universal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InclEngine {
    /// On-the-fly antichain search over cached quotients — lazy
    /// macro-state expansion, the [`crate::interned::QuotientCache`]
    /// behind it (the default).
    OnTheFly,
    /// Eager antichain search: both operands quotiented from scratch,
    /// all letter graphs and single-letter elements materialized up
    /// front (the first differential oracle).
    Antichain,
    /// Rank-based complementation + product emptiness (the second
    /// oracle).
    Rank,
}

/// Maps a raw `SL_INCL_ENGINE` value to an engine, plus the warning an
/// unrecognized value earns. Factored out of [`incl_engine`] so the
/// fallback-and-warn contract is unit-testable without mutating the
/// process environment.
fn parse_incl_engine(raw: Option<&str>) -> (InclEngine, Option<String>) {
    match raw {
        None | Some("" | "onthefly") => (InclEngine::OnTheFly, None),
        Some("antichain") => (InclEngine::Antichain, None),
        Some("rank") => (InclEngine::Rank, None),
        Some(other) => (
            InclEngine::OnTheFly,
            Some(format!(
                "sl-buchi: SL_INCL_ENGINE=`{other}` is not a known inclusion engine \
                 (accepted values: `onthefly`, `antichain`, `rank`); falling back to `onthefly`"
            )),
        ),
    }
}

/// The engine selected by `SL_INCL_ENGINE` (`onthefly`, `antichain`,
/// or `rank`), read once per process; unset values select
/// [`InclEngine::OnTheFly`], and an unrecognized value falls back to
/// the on-the-fly engine after warning once on stderr (naming the bad
/// value and the accepted ones — a silent fallback once masked typos
/// like `SL_INCL_ENGINE=ranked` in benchmark runs). Tests that need
/// several engines in one process call the per-engine entry points
/// instead of mutating the environment.
pub fn incl_engine() -> InclEngine {
    static ENGINE: OnceLock<InclEngine> = OnceLock::new();
    *ENGINE.get_or_init(|| {
        let raw = std::env::var("SL_INCL_ENGINE").ok();
        let (engine, warning) = parse_incl_engine(raw.as_deref());
        if let Some(warning) = warning {
            eprintln!("{warning}");
        }
        engine
    })
}

/// Global entry cap for the shared complement cache; past it a shard
/// is cleared rather than grown, bounding memory on unbounded corpora.
/// The budget is split evenly across [`COMPLEMENT_CACHE_SHARDS`].
const COMPLEMENT_CACHE_CAP: usize = 256;

/// Stripe count for the shared complement cache. Shard selection is
/// `structural_hash % shards`, so repeat queries for one automaton
/// always land on (and serialize through) the same stripe while
/// distinct automata complement concurrently.
const COMPLEMENT_CACHE_SHARDS: usize = 8;

/// Counters describing how a [`ComplementCache`] has been used.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ComplementCacheStats {
    /// Lookups answered from the cache.
    pub hits: usize,
    /// Lookups whose hash had no occupant at all, so the rank-based
    /// construction ran and the result was stored. Disjoint from
    /// `collisions`: every lookup is exactly one of hit, miss, or
    /// collision.
    pub misses: usize,
    /// Complements currently stored.
    pub entries: usize,
    /// Entries dropped by fault injection (site
    /// `"buchi.complement_cache"`) — each one forced a
    /// behavior-preserving recomputation.
    pub invalidations: usize,
    /// Lookups whose 64-bit structural hash matched a stored entry for
    /// a *different* automaton; the result was recomputed uncached, so
    /// a collision costs time but never correctness.
    pub collisions: usize,
}

/// A stored complement alongside the automaton it was computed for —
/// the collision check for the hash-keyed map.
#[derive(Debug)]
struct CacheEntry {
    automaton: Buchi,
    result: Result<Buchi, ComplementBudgetExceeded>,
}

/// A memoizing cache for rank-based complements, keyed by
/// [`Buchi::structural_hash`] — so a lookup hashes 8 bytes instead of
/// re-hashing the whole transition relation — with the stored automaton
/// equality-checked to rule out collisions. The rank-based deciders
/// [`included_rank`], [`equivalent_rank`], and [`universal_rank`] share
/// one process-wide sharded instance (see
/// [`shared_complement_cache_stats`]); explicit instances can be
/// created for isolated measurements via the `*_with_cache` entry
/// points.
#[derive(Debug)]
pub struct ComplementCache {
    map: HashMap<u64, CacheEntry>,
    cap: usize,
    hits: usize,
    misses: usize,
    invalidations: usize,
    collisions: usize,
    lookups: u64,
}

impl Default for ComplementCache {
    fn default() -> Self {
        Self::with_cap(COMPLEMENT_CACHE_CAP)
    }
}

impl ComplementCache {
    /// An empty cache with the default entry cap.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache clearing itself past `cap` entries (the shared
    /// shards use `COMPLEMENT_CACHE_CAP / COMPLEMENT_CACHE_SHARDS`
    /// each, so the global bound stays where the thread-local cache's
    /// was).
    #[must_use]
    pub fn with_cap(cap: usize) -> Self {
        ComplementCache {
            map: HashMap::new(),
            cap: cap.max(1),
            hits: 0,
            misses: 0,
            invalidations: 0,
            collisions: 0,
            lookups: 0,
        }
    }

    /// The complement of `b`, computed at most once per distinct
    /// automaton (budget errors are cached too — retrying an automaton
    /// that blew the budget would blow it again).
    ///
    /// Under a process-wide fault drill (site
    /// `"buchi.complement_cache"`), a firing lookup drops the memoized
    /// entry and recomputes — a behavior-preserving degradation that
    /// exercises the recovery path, observable via
    /// [`ComplementCacheStats::invalidations`].
    ///
    /// # Errors
    ///
    /// Propagates [`ComplementBudgetExceeded`] from the underlying
    /// construction.
    pub fn complement(&mut self, b: &Buchi) -> Result<Buchi, ComplementBudgetExceeded> {
        let lookup = self.lookups;
        self.lookups += 1;
        let key = b.structural_hash();
        if fault::global().should_fault("buchi.complement_cache", lookup)
            && self
                .map
                .get(&key)
                .is_some_and(|entry| entry.automaton == *b)
        {
            self.map.remove(&key);
            self.invalidations += 1;
        }
        if let Some(entry) = self.map.get(&key) {
            if entry.automaton == *b {
                self.hits += 1;
                return entry.result.clone();
            }
            // Hash collision with a distinct automaton: keep the first
            // occupant (deterministic) and recompute uncached. Counted
            // as a collision only — not also a miss — so the two
            // fallback paths stay distinguishable in `engine_stats()`.
            self.collisions += 1;
            return complement(b);
        }
        self.misses += 1;
        let result = complement(b);
        if self.map.len() >= self.cap {
            self.map.clear();
        }
        self.map.insert(
            key,
            CacheEntry {
                automaton: b.clone(),
                result: result.clone(),
            },
        );
        result
    }

    /// Usage counters.
    #[must_use]
    pub fn stats(&self) -> ComplementCacheStats {
        ComplementCacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.map.len(),
            invalidations: self.invalidations,
            collisions: self.collisions,
        }
    }

    /// Drops all entries and resets the counters.
    pub fn reset(&mut self) {
        self.map.clear();
        self.hits = 0;
        self.misses = 0;
        self.invalidations = 0;
        self.collisions = 0;
        self.lookups = 0;
    }
}

/// The process-wide complement cache: striped `Mutex`-guarded shards
/// selected by structural hash, so every session and worker thread
/// shares one memoization pool instead of each thread re-deriving the
/// same complements (the pre-concurrency design was `thread_local!`).
fn shared_shards() -> &'static [Mutex<ComplementCache>] {
    static SHARDS: OnceLock<Vec<Mutex<ComplementCache>>> = OnceLock::new();
    SHARDS.get_or_init(|| {
        let per_shard = (COMPLEMENT_CACHE_CAP / COMPLEMENT_CACHE_SHARDS).max(1);
        (0..COMPLEMENT_CACHE_SHARDS)
            .map(|_| Mutex::new(ComplementCache::with_cap(per_shard)))
            .collect()
    })
}

/// The shard responsible for `b`, locked. Mutex poisoning is absorbed:
/// the cache is semantically transparent, so state abandoned by a
/// panicking thread is still a valid (possibly stale) memo table.
fn shard_for(b: &Buchi) -> MutexGuard<'static, ComplementCache> {
    let shards = shared_shards();
    let index = (b.structural_hash() % shards.len() as u64) as usize;
    shards[index].lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Summed counters of the shared sharded complement cache — what the
/// `sld` daemon's `stats` verb reports under `engine.complement_cache`.
/// `entries` is the total resident across shards.
#[must_use]
pub fn shared_complement_cache_stats() -> ComplementCacheStats {
    let mut total = ComplementCacheStats::default();
    for shard in shared_shards() {
        let stats = shard.lock().unwrap_or_else(std::sync::PoisonError::into_inner).stats();
        total.hits += stats.hits;
        total.misses += stats.misses;
        total.entries += stats.entries;
        total.invalidations += stats.invalidations;
        total.collisions += stats.collisions;
    }
    total
}

/// Empties every shard of the shared complement cache and zeroes its
/// counters (bench cold/warm isolation).
pub fn reset_shared_complement_cache() {
    for shard in shared_shards() {
        shard.lock().unwrap_or_else(std::sync::PoisonError::into_inner).reset();
    }
}

/// A combined snapshot of both inclusion engines' instrumentation: the
/// rank path's complement-cache counters (process-shared, summed over
/// the shards) and the antichain path's iteration counters (still
/// thread-local — a pure function of the queries this thread ran). The
/// `sld` daemon's `stats` verb and the `e12_service_throughput` bench
/// report these instead of guessing at cache effectiveness; per-query
/// antichain costs come from snapshotting before and after a call on
/// the thread that ran it and diffing with
/// [`EngineStats::delta_since`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Complement-cache counters (rank engine): hits, misses, resident
    /// entries, fault invalidations, hash collisions.
    pub complement_cache: ComplementCacheStats,
    /// Quotient-cache counters (on-the-fly engine): hits, misses,
    /// resident entries, invalidations, collisions, incremental
    /// advances, dirty/clean SCC splits.
    pub quotient_cache: QuotientCacheStats,
    /// Antichain fixpoint counters: searches, insertion attempts,
    /// subsumption scans, counterexamples, macro-state gauges.
    pub antichain: AntichainStats,
}

impl EngineStats {
    /// The counter increments since `earlier`. The `entries` gauge of
    /// the complement cache is carried over as-is (it is a level, not a
    /// counter); everything else is a saturating difference.
    #[must_use]
    pub fn delta_since(&self, earlier: &EngineStats) -> EngineStats {
        EngineStats {
            complement_cache: ComplementCacheStats {
                hits: self.complement_cache.hits.saturating_sub(earlier.complement_cache.hits),
                misses: self
                    .complement_cache
                    .misses
                    .saturating_sub(earlier.complement_cache.misses),
                entries: self.complement_cache.entries,
                invalidations: self
                    .complement_cache
                    .invalidations
                    .saturating_sub(earlier.complement_cache.invalidations),
                collisions: self
                    .complement_cache
                    .collisions
                    .saturating_sub(earlier.complement_cache.collisions),
            },
            quotient_cache: QuotientCacheStats {
                hits: self.quotient_cache.hits.saturating_sub(earlier.quotient_cache.hits),
                misses: self
                    .quotient_cache
                    .misses
                    .saturating_sub(earlier.quotient_cache.misses),
                entries: self.quotient_cache.entries,
                invalidations: self
                    .quotient_cache
                    .invalidations
                    .saturating_sub(earlier.quotient_cache.invalidations),
                collisions: self
                    .quotient_cache
                    .collisions
                    .saturating_sub(earlier.quotient_cache.collisions),
                advances: self
                    .quotient_cache
                    .advances
                    .saturating_sub(earlier.quotient_cache.advances),
                dirty_sccs: self
                    .quotient_cache
                    .dirty_sccs
                    .saturating_sub(earlier.quotient_cache.dirty_sccs),
                clean_sccs: self
                    .quotient_cache
                    .clean_sccs
                    .saturating_sub(earlier.quotient_cache.clean_sccs),
            },
            antichain: self.antichain.delta_since(&earlier.antichain),
        }
    }

    /// Accumulates another delta into this total. `entries` takes the
    /// maximum (a high-water gauge across threads is more informative
    /// than a meaningless sum of levels).
    pub fn absorb(&mut self, delta: &EngineStats) {
        self.complement_cache.hits += delta.complement_cache.hits;
        self.complement_cache.misses += delta.complement_cache.misses;
        self.complement_cache.entries =
            self.complement_cache.entries.max(delta.complement_cache.entries);
        self.complement_cache.invalidations += delta.complement_cache.invalidations;
        self.complement_cache.collisions += delta.complement_cache.collisions;
        self.quotient_cache.hits += delta.quotient_cache.hits;
        self.quotient_cache.misses += delta.quotient_cache.misses;
        self.quotient_cache.entries =
            self.quotient_cache.entries.max(delta.quotient_cache.entries);
        self.quotient_cache.invalidations += delta.quotient_cache.invalidations;
        self.quotient_cache.collisions += delta.quotient_cache.collisions;
        self.quotient_cache.advances += delta.quotient_cache.advances;
        self.quotient_cache.dirty_sccs += delta.quotient_cache.dirty_sccs;
        self.quotient_cache.clean_sccs += delta.quotient_cache.clean_sccs;
        self.antichain.absorb(&delta.antichain);
    }
}

/// An [`EngineStats`] snapshot: the **process-wide** shared complement
/// cache plus **this thread's** antichain counters. The antichain store
/// is thread-local (a pure function of the queries this thread ran), so
/// callers that fan work out across a sweep must still snapshot on the
/// worker thread that ran the query (as the `sld` daemon does) rather
/// than on the coordinating thread; the complement half is shared, so
/// deltas of it are only meaningful while no other thread is driving
/// the rank engine.
#[must_use]
pub fn engine_stats() -> EngineStats {
    EngineStats {
        complement_cache: shared_complement_cache_stats(),
        quotient_cache: shared_quotient_cache_stats(),
        antichain: antichain_stats(),
    }
}

/// The outcome of an inclusion check: either inclusion holds, or a
/// counterexample word in `L(A) \ L(B)` is produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inclusion {
    /// `L(A) ⊆ L(B)`.
    Holds,
    /// A word accepted by `A` but not by `B`.
    CounterExample(LassoWord),
}

impl Inclusion {
    /// Whether inclusion holds.
    #[must_use]
    pub fn holds(&self) -> bool {
        matches!(self, Inclusion::Holds)
    }
}

/// Decides `L(a) ⊆ L(b)` with the engine selected by `SL_INCL_ENGINE`
/// ([`incl_engine`]; antichain by default).
///
/// # Errors
///
/// Propagates [`ComplementBudgetExceeded`] if the search blows its
/// node budget (antichain) or complementing `b` blows up (rank). When
/// a complement of `b` is available by other means — e.g. `b` came
/// from an LTL formula, whose negation translates directly — use
/// [`included_with_complement`] instead.
pub fn included(a: &Buchi, b: &Buchi) -> Result<Inclusion, ComplementBudgetExceeded> {
    match incl_engine() {
        InclEngine::OnTheFly => included_onthefly(a, b),
        InclEngine::Antichain => included_antichain(a, b),
        InclEngine::Rank => included_rank(a, b),
    }
}

/// Decides `L(a) ⊆ L(b)` with the rank-based engine, regardless of
/// `SL_INCL_ENGINE`: complement `b` (through the shared sharded
/// [`ComplementCache`]) and test `L(a) ∩ ¬L(b)` for emptiness. The
/// shard lock is held for the complement lookup only, so concurrent
/// duplicate queries serialize through one construction while distinct
/// automata proceed on other stripes.
///
/// # Errors
///
/// Propagates [`ComplementBudgetExceeded`] if complementing `b` blows
/// up.
pub fn included_rank(a: &Buchi, b: &Buchi) -> Result<Inclusion, ComplementBudgetExceeded> {
    let not_b = shard_for(b).complement(b)?;
    Ok(included_with_complement(a, &not_b))
}

/// [`included_rank`] against an explicit, caller-owned cache instead of
/// the shared shards — isolated measurements (how many complements did
/// this decider compute?) without cross-talk from concurrent threads.
///
/// # Errors
///
/// Propagates [`ComplementBudgetExceeded`] if complementing `b` blows
/// up.
pub fn included_rank_with_cache(
    cache: &mut ComplementCache,
    a: &Buchi,
    b: &Buchi,
) -> Result<Inclusion, ComplementBudgetExceeded> {
    let not_b = cache.complement(b)?;
    Ok(included_with_complement(a, &not_b))
}

/// Decides `L(a) ⊆ L(b)` given an automaton `not_b` for the complement
/// of `b`: inclusion holds iff `L(a) ∩ L(not_b) = ∅`. This sidesteps
/// the exponential complementation when the caller has a cheap
/// complement (negated formula, subset-construction complement of a
/// safety automaton, ...).
#[must_use]
pub fn included_with_complement(a: &Buchi, not_b: &Buchi) -> Inclusion {
    match find_accepted_word(&intersection(a, not_b)) {
        None => Inclusion::Holds,
        Some(w) => Inclusion::CounterExample(w),
    }
}

/// Decides `L(a) = L(b)` with the engine selected by `SL_INCL_ENGINE`,
/// returning a word on which they differ if not. Both engines
/// short-circuit: a counterexample to the first inclusion settles the
/// question (for the rank engine, ¬a is then never computed — the
/// regression test observes this through the cache stats).
///
/// # Errors
///
/// Propagates [`ComplementBudgetExceeded`].
pub fn equivalent(a: &Buchi, b: &Buchi) -> Result<Result<(), LassoWord>, ComplementBudgetExceeded> {
    match incl_engine() {
        InclEngine::OnTheFly => equivalent_onthefly(a, b),
        InclEngine::Antichain => equivalent_antichain(a, b),
        InclEngine::Rank => equivalent_rank(a, b),
    }
}

/// Decides `L(a) = L(b)` with the rank-based engine, regardless of
/// `SL_INCL_ENGINE`; short-circuits on the first counterexample.
///
/// # Errors
///
/// Propagates [`ComplementBudgetExceeded`].
pub fn equivalent_rank(
    a: &Buchi,
    b: &Buchi,
) -> Result<Result<(), LassoWord>, ComplementBudgetExceeded> {
    if let Inclusion::CounterExample(w) = included_rank(a, b)? {
        return Ok(Err(w));
    }
    if let Inclusion::CounterExample(w) = included_rank(b, a)? {
        return Ok(Err(w));
    }
    Ok(Ok(()))
}

/// [`equivalent_rank`] against an explicit, caller-owned cache; both
/// directions' complements land in the one instance, so the
/// short-circuit behavior is observable through its stats.
///
/// # Errors
///
/// Propagates [`ComplementBudgetExceeded`].
pub fn equivalent_rank_with_cache(
    cache: &mut ComplementCache,
    a: &Buchi,
    b: &Buchi,
) -> Result<Result<(), LassoWord>, ComplementBudgetExceeded> {
    if let Inclusion::CounterExample(w) = included_rank_with_cache(cache, a, b)? {
        return Ok(Err(w));
    }
    if let Inclusion::CounterExample(w) = included_rank_with_cache(cache, b, a)? {
        return Ok(Err(w));
    }
    Ok(Ok(()))
}

/// Decides `L(b) = Σ^ω` with the engine selected by `SL_INCL_ENGINE`,
/// returning a rejected word if not.
///
/// # Errors
///
/// Propagates [`ComplementBudgetExceeded`].
pub fn universal(b: &Buchi) -> Result<Result<(), LassoWord>, ComplementBudgetExceeded> {
    match incl_engine() {
        InclEngine::OnTheFly => universal_onthefly(b),
        InclEngine::Antichain => universal_antichain(b),
        InclEngine::Rank => universal_rank(b),
    }
}

/// Decides `L(b) = Σ^ω` with the rank-based engine, regardless of
/// `SL_INCL_ENGINE`: complement and test for emptiness.
///
/// # Errors
///
/// Propagates [`ComplementBudgetExceeded`].
pub fn universal_rank(b: &Buchi) -> Result<Result<(), LassoWord>, ComplementBudgetExceeded> {
    let not_b = shard_for(b).complement(b)?;
    Ok(match find_accepted_word(&not_b) {
        None => Ok(()),
        Some(w) => Err(w),
    })
}

/// [`universal_rank`] against an explicit, caller-owned cache.
///
/// # Errors
///
/// Propagates [`ComplementBudgetExceeded`].
pub fn universal_rank_with_cache(
    cache: &mut ComplementCache,
    b: &Buchi,
) -> Result<Result<(), LassoWord>, ComplementBudgetExceeded> {
    let not_b = cache.complement(b)?;
    Ok(match find_accepted_word(&not_b) {
        None => Ok(()),
        Some(w) => Err(w),
    })
}

/// Decides `L(a) ⊆ L(b)` under a cooperative [`Budget`], with the
/// engine selected by `SL_INCL_ENGINE`.
///
/// Antichain: every insertion attempt of the fixpoint loop charges the
/// meter (phase `"buchi.incl.antichain"`). Rank: the complementation —
/// the exponential part — is metered through [`complement_budgeted`];
/// the product-emptiness search that follows is polynomial and runs
/// unmetered. Budget semantics are per-call, so the rank path
/// deliberately bypasses the per-thread memoization cache (a cached
/// result computed under a generous budget must not be replayed as if
/// a strict one had admitted it).
///
/// # Errors
///
/// Budget exhaustion, cancellation, an injected fault, or (rank only)
/// an oversized operand — always with a context frame naming
/// `included_budgeted`.
pub fn included_budgeted(a: &Buchi, b: &Buchi, budget: &Budget) -> Result<Inclusion, SlError> {
    match incl_engine() {
        InclEngine::OnTheFly => included_onthefly_budgeted(a, b, budget)
            .map_err(|e| e.context("included_budgeted: antichain search")),
        InclEngine::Antichain => included_antichain_budgeted(a, b, budget)
            .map_err(|e| e.context("included_budgeted: antichain search")),
        InclEngine::Rank => included_rank_budgeted(a, b, budget),
    }
}

/// Decides `L(a) ⊆ L(b)` under a cooperative [`Budget`] with the
/// rank-based engine, regardless of `SL_INCL_ENGINE`.
///
/// # Errors
///
/// Whatever [`complement_budgeted`] reports: budget exhaustion,
/// cancellation, an injected fault, or an oversized operand.
pub fn included_rank_budgeted(a: &Buchi, b: &Buchi, budget: &Budget) -> Result<Inclusion, SlError> {
    let not_b = complement_budgeted(b, budget)
        .map_err(|e| e.context("included_budgeted: complementing the right operand"))?;
    Ok(included_with_complement(a, &not_b))
}

/// Decides `L(a) = L(b)` under a cooperative [`Budget`], with the
/// engine selected by `SL_INCL_ENGINE`, returning a separating word if
/// the languages differ. Short-circuits exactly like [`equivalent`]: a
/// counterexample to the first inclusion settles the question before
/// the second direction is attempted.
///
/// # Errors
///
/// Whatever [`included_budgeted`] reports for either direction.
pub fn equivalent_budgeted(
    a: &Buchi,
    b: &Buchi,
    budget: &Budget,
) -> Result<Result<(), LassoWord>, SlError> {
    match incl_engine() {
        InclEngine::OnTheFly => equivalent_onthefly_budgeted(a, b, budget)
            .map_err(|e| e.context("included_budgeted: antichain search")),
        InclEngine::Antichain => equivalent_antichain_budgeted(a, b, budget)
            .map_err(|e| e.context("included_budgeted: antichain search")),
        InclEngine::Rank => {
            if let Inclusion::CounterExample(w) = included_rank_budgeted(a, b, budget)? {
                return Ok(Err(w));
            }
            if let Inclusion::CounterExample(w) = included_rank_budgeted(b, a, budget)? {
                return Ok(Err(w));
            }
            Ok(Ok(()))
        }
    }
}

/// Convenience: emptiness re-exported next to its siblings.
#[must_use]
pub fn empty(b: &Buchi) -> bool {
    is_empty(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::BuchiBuilder;
    use sl_omega::Alphabet;

    fn sigma() -> Alphabet {
        Alphabet::ab()
    }

    fn inf_a(s: &Alphabet) -> Buchi {
        let a = s.symbol("a").unwrap();
        let b = s.symbol("b").unwrap();
        let mut builder = BuchiBuilder::new(s.clone());
        let q0 = builder.add_state(false);
        let qa = builder.add_state(true);
        builder.add_transition(q0, b, q0);
        builder.add_transition(q0, a, qa);
        builder.add_transition(qa, b, q0);
        builder.add_transition(qa, a, qa);
        builder.build(q0)
    }

    /// Accepts a^ω only.
    fn only_a(s: &Alphabet) -> Buchi {
        let a = s.symbol("a").unwrap();
        let mut builder = BuchiBuilder::new(s.clone());
        let q0 = builder.add_state(true);
        builder.add_transition(q0, a, q0);
        builder.build(q0)
    }

    #[test]
    fn recognized_engine_values_parse_silently() {
        assert_eq!(parse_incl_engine(None), (InclEngine::OnTheFly, None));
        assert_eq!(parse_incl_engine(Some("")), (InclEngine::OnTheFly, None));
        assert_eq!(
            parse_incl_engine(Some("onthefly")),
            (InclEngine::OnTheFly, None)
        );
        assert_eq!(
            parse_incl_engine(Some("antichain")),
            (InclEngine::Antichain, None)
        );
        assert_eq!(parse_incl_engine(Some("rank")), (InclEngine::Rank, None));
    }

    #[test]
    fn unrecognized_engine_value_warns_and_falls_back() {
        let (engine, warning) = parse_incl_engine(Some("ranked"));
        assert_eq!(engine, InclEngine::OnTheFly);
        let warning = warning.expect("an unrecognized value must earn a warning");
        // The warning has to name the bad value and every accepted one,
        // so the fix is readable straight off stderr.
        assert!(warning.contains("`ranked`"), "bad value missing: {warning}");
        assert!(warning.contains("`onthefly`"), "accepted value missing: {warning}");
        assert!(warning.contains("`antichain`"), "accepted value missing: {warning}");
        assert!(warning.contains("`rank`"), "accepted value missing: {warning}");
        assert!(warning.contains("SL_INCL_ENGINE"), "variable missing: {warning}");
    }

    #[test]
    fn engine_stats_count_antichain_work() {
        let s = sigma();
        let before = engine_stats();
        let inc = included_antichain(&only_a(&s), &inf_a(&s)).unwrap();
        assert!(inc.holds());
        let holds_delta = engine_stats().delta_since(&before);
        assert_eq!(holds_delta.antichain.searches, 1);
        assert!(holds_delta.antichain.insert_attempts > 0);
        assert_eq!(holds_delta.antichain.counterexamples, 0);
        // (The antichain path never touches the complement cache, but
        // that cache is now process-shared — concurrent tests driving
        // the rank engine would make a delta assertion here flaky; the
        // isolation is pinned below with an explicit cache instead.)

        let mid = engine_stats();
        let inc = included_antichain(&inf_a(&s), &only_a(&s)).unwrap();
        assert!(!inc.holds());
        let cex_delta = engine_stats().delta_since(&mid);
        assert_eq!(cex_delta.antichain.searches, 1);
        assert_eq!(cex_delta.antichain.counterexamples, 1);
    }

    #[test]
    fn engine_stats_deltas_absorb_into_totals() {
        let a = EngineStats {
            complement_cache: ComplementCacheStats {
                hits: 2,
                misses: 1,
                entries: 3,
                invalidations: 0,
                collisions: 0,
            },
            quotient_cache: QuotientCacheStats {
                hits: 5,
                misses: 2,
                entries: 2,
                invalidations: 0,
                collisions: 0,
                advances: 1,
                dirty_sccs: 3,
                clean_sccs: 7,
            },
            antichain: AntichainStats {
                searches: 1,
                insert_attempts: 10,
                subsumption_scans: 20,
                counterexamples: 0,
                peak_macro_states: 8,
                final_antichain: 5,
            },
        };
        let mut total = EngineStats::default();
        total.absorb(&a);
        total.absorb(&a);
        assert_eq!(total.complement_cache.hits, 4);
        // `entries` is a gauge: absorbed as a high-water mark, not summed.
        assert_eq!(total.complement_cache.entries, 3);
        assert_eq!(total.quotient_cache.hits, 10);
        assert_eq!(total.quotient_cache.entries, 2);
        assert_eq!(total.quotient_cache.dirty_sccs, 6);
        assert_eq!(total.antichain.insert_attempts, 20);
        // The macro-state gauges absorb as high-water marks too.
        assert_eq!(total.antichain.peak_macro_states, 8);
        assert_eq!(a.delta_since(&a), EngineStats {
            complement_cache: ComplementCacheStats { entries: 3, ..Default::default() },
            quotient_cache: QuotientCacheStats { entries: 2, ..Default::default() },
            antichain: AntichainStats {
                peak_macro_states: 8,
                final_antichain: 5,
                ..Default::default()
            },
        });
    }

    #[test]
    fn inclusion_holds_for_subset() {
        let s = sigma();
        // a^ω ⊆ GF a.
        let inc = included(&only_a(&s), &inf_a(&s)).unwrap();
        assert!(inc.holds());
    }

    #[test]
    fn inclusion_counterexample_is_genuine() {
        let s = sigma();
        // GF a ⊄ {a^ω}: counterexample must be accepted by GF a, not a^ω.
        let inc = included(&inf_a(&s), &only_a(&s)).unwrap();
        match inc {
            Inclusion::CounterExample(w) => {
                assert!(inf_a(&s).accepts(&w));
                assert!(!only_a(&s).accepts(&w));
            }
            Inclusion::Holds => panic!("inclusion should fail"),
        }
    }

    #[test]
    fn equivalence_of_identical_machines() {
        let s = sigma();
        assert!(equivalent(&inf_a(&s), &inf_a(&s)).unwrap().is_ok());
    }

    #[test]
    fn equivalence_failure_produces_separator() {
        let s = sigma();
        let w = equivalent(&inf_a(&s), &Buchi::universal(s.clone()))
            .unwrap()
            .unwrap_err();
        // The separator is accepted by exactly one of the two.
        assert_ne!(
            inf_a(&s).accepts(&w),
            Buchi::universal(s.clone()).accepts(&w)
        );
    }

    #[test]
    fn universality() {
        let s = sigma();
        assert!(universal(&Buchi::universal(s.clone())).unwrap().is_ok());
        let rejected = universal(&inf_a(&s)).unwrap().unwrap_err();
        assert!(!inf_a(&s).accepts(&rejected));
    }

    #[test]
    fn empty_helper() {
        let s = sigma();
        assert!(empty(&Buchi::empty_language(s.clone())));
        assert!(!empty(&Buchi::universal(s)));
    }

    #[test]
    fn engine_selection_follows_env() {
        let expected = match std::env::var("SL_INCL_ENGINE").as_deref() {
            Ok("rank") => InclEngine::Rank,
            Ok("antichain") => InclEngine::Antichain,
            _ => InclEngine::OnTheFly,
        };
        assert_eq!(incl_engine(), expected);
    }

    #[test]
    fn dispatching_deciders_agree_with_all_engines() {
        let s = sigma();
        let a = only_a(&s);
        let b = inf_a(&s);
        // Whatever SL_INCL_ENGINE says, the dispatcher must agree with
        // every pinned engine — they are exact.
        assert_eq!(
            included(&a, &b).unwrap().holds(),
            included_rank(&a, &b).unwrap().holds()
        );
        assert_eq!(
            included(&a, &b).unwrap().holds(),
            crate::antichain::included_antichain(&a, &b).unwrap().holds()
        );
        assert_eq!(
            included(&a, &b).unwrap().holds(),
            included_onthefly(&a, &b).unwrap().holds()
        );
        assert_eq!(
            universal(&b).unwrap().is_ok(),
            universal_rank(&b).unwrap().is_ok()
        );
        assert_eq!(
            universal(&b).unwrap().is_ok(),
            universal_onthefly(&b).unwrap().is_ok()
        );
        assert_eq!(
            equivalent(&a, &b).unwrap().is_ok(),
            equivalent_rank(&a, &b).unwrap().is_ok()
        );
        assert_eq!(
            equivalent(&a, &b).unwrap().is_ok(),
            equivalent_onthefly(&a, &b).unwrap().is_ok()
        );
    }

    #[test]
    fn equivalent_rank_short_circuits_on_first_counterexample() {
        let s = sigma();
        // L(universal) ⊄ L(inf_a): the first inclusion fails, so
        // `equivalent_rank` must stop after complementing only inf_a —
        // the complement of the universal automaton is never computed.
        // An explicit cache isolates the count from the shared shards
        // (which concurrent tests mutate freely).
        let big = Buchi::universal(s.clone());
        let small = inf_a(&s);
        let mut cache = ComplementCache::new();
        let verdict = equivalent_rank_with_cache(&mut cache, &big, &small).unwrap();
        assert!(verdict.is_err(), "languages differ");
        let stats = cache.stats();
        assert_eq!(
            stats.misses,
            1 + stats.invalidations,
            "only ¬inf_a may be computed on the early exit \
             (modulo injected invalidations)"
        );
        assert_eq!(stats.entries, 1);
        // The shared-shard decider agrees on the verdict itself.
        assert!(equivalent_rank(&big, &small).unwrap().is_err());
    }

    #[test]
    fn complement_cache_memoizes_repeat_queries() {
        let s = sigma();
        let m = inf_a(&s);
        let mut cache = ComplementCache::new();
        assert!(universal_rank_with_cache(&mut cache, &m).unwrap().is_err());
        assert!(universal_rank_with_cache(&mut cache, &m).unwrap().is_err());
        assert!(
            !included_rank_with_cache(&mut cache, &Buchi::universal(s.clone()), &m)
                .unwrap()
                .holds()
        );
        let stats = cache.stats();
        // A process-wide fault drill may invalidate entries, turning a
        // hit into a recomputation — one for one, never changing answers.
        assert_eq!(
            stats.misses,
            1 + stats.invalidations,
            "one distinct automaton complemented (modulo injected invalidations)"
        );
        assert_eq!(stats.hits, 2 - stats.invalidations);
    }

    #[test]
    fn shared_shards_answer_like_an_isolated_cache() {
        // The sharded shared cache is semantically transparent: the
        // deciders that route through it agree with explicit-cache and
        // uncached runs, and its rolled-up stats move monotonically.
        let s = sigma();
        let m = inf_a(&s);
        let before = shared_complement_cache_stats();
        assert!(universal_rank(&m).unwrap().is_err());
        assert!(universal_rank(&m).unwrap().is_err());
        let after = shared_complement_cache_stats();
        assert!(
            after.hits + after.misses + after.collisions
                >= before.hits + before.misses + before.collisions + 2,
            "two lookups must be accounted somewhere: {before:?} -> {after:?}"
        );
        let mut isolated = ComplementCache::new();
        assert_eq!(
            universal_rank_with_cache(&mut isolated, &m).unwrap(),
            universal_rank(&m).unwrap()
        );
    }

    #[test]
    fn hash_collisions_recompute_uncached() {
        let s = sigma();
        let planted = inf_a(&s);
        let queried = only_a(&s);
        assert_ne!(planted, queried);
        let reference = complement(&queried).unwrap();
        let mut cache = ComplementCache::new();
        // Plant the wrong automaton under the queried automaton's key,
        // simulating a 64-bit structural-hash collision.
        cache.map.insert(
            queried.structural_hash(),
            CacheEntry {
                automaton: planted.clone(),
                result: complement(&planted),
            },
        );
        let out = cache.complement(&queried).unwrap();
        assert_eq!(out, reference, "collision never changes the answer");
        let stats = cache.stats();
        assert_eq!(stats.collisions, 1);
        assert_eq!(stats.hits, 0);
        assert_eq!(
            stats.misses, 0,
            "a collision fallback is not double-counted as a miss"
        );
        assert_eq!(stats.entries, 1, "the first occupant is kept");
        // A repeat query collides again — deterministically uncached.
        let again = cache.complement(&queried).unwrap();
        assert_eq!(again, reference);
        assert_eq!(cache.stats().collisions, 2);
        assert_eq!(cache.stats().misses, 0);
    }

    #[test]
    fn collision_and_miss_counters_are_disjoint() {
        // Regression for the stats bug where a hash-collision fallback
        // also bumped `misses`, making the two paths indistinguishable
        // in `engine_stats()`. Drive one genuine miss, one hit, and one
        // planted collision; each lookup lands in exactly one counter.
        let s = sigma();
        let first = inf_a(&s);
        let second = only_a(&s);
        assert_ne!(first, second);
        let mut cache = ComplementCache::new();
        cache.complement(&first).unwrap(); // miss: empty slot, computed + stored
        cache.complement(&first).unwrap(); // hit: same automaton
        cache.map.insert(
            second.structural_hash(),
            CacheEntry {
                automaton: first.clone(),
                result: complement(&first),
            },
        );
        cache.complement(&second).unwrap(); // collision: occupant differs
        let stats = cache.stats();
        assert_eq!(stats.collisions, 1);
        // A process-wide fault drill may invalidate the stored entry and
        // turn the hit into a recorded miss; either way each of the
        // first two lookups is exactly one of hit/miss, and the
        // collision is counted in neither.
        assert_eq!(
            stats.hits + stats.misses,
            2,
            "collision must not leak into hits or misses: {stats:?}"
        );
        assert_eq!(stats.misses, 1 + stats.invalidations);
    }

    #[test]
    fn cached_budget_errors_are_replayed() {
        let mut cache = ComplementCache::new();
        let s = sigma();
        let m = inf_a(&s);
        let first = cache.complement(&m).unwrap();
        let second = cache.complement(&m).unwrap();
        assert_eq!(first, second, "recomputation after invalidation is exact");
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 2);
        assert_eq!(stats.misses, 1 + stats.invalidations);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn budgeted_inclusion_matches_unbudgeted() {
        let s = sigma();
        let a = only_a(&s);
        let b = inf_a(&s);
        match included_budgeted(&a, &b, &Budget::unlimited()) {
            Ok(inc) => assert_eq!(inc, included(&a, &b).unwrap()),
            Err(err) => assert!(err.root().is_fault_injected(), "{err}"),
        }
    }

    #[test]
    fn budgeted_inclusion_respects_step_limit() {
        let s = sigma();
        let err = included_budgeted(&only_a(&s), &inf_a(&s), &Budget::unlimited().with_steps(1))
            .unwrap_err();
        assert!(
            err.root().is_budget_exceeded() || err.root().is_fault_injected(),
            "{err}"
        );
        assert!(
            err.to_string().contains("included_budgeted"),
            "context chain names the caller: {err}"
        );
    }

    #[test]
    fn budgeted_equivalence_finds_separator() {
        let s = sigma();
        match equivalent_budgeted(&inf_a(&s), &Buchi::universal(s.clone()), &Budget::unlimited()) {
            Ok(verdict) => {
                let w = verdict.unwrap_err();
                assert_ne!(
                    inf_a(&s).accepts(&w),
                    Buchi::universal(s.clone()).accepts(&w)
                );
            }
            Err(err) => assert!(err.root().is_fault_injected(), "{err}"),
        }
    }

    #[test]
    fn injected_invalidation_is_behavior_preserving() {
        // An always-firing plan drops the memoized entry on every
        // lookup; the recomputation must agree bit-for-bit with an
        // untouched cache.
        let plan = sl_support::FaultPlan::new(2003, 1.0);
        let s = sigma();
        let m = inf_a(&s);
        let mut cache = ComplementCache::new();
        let baseline = cache.complement(&m).unwrap();
        // Simulate the drill by hand: the plan decides, the cache path
        // re-runs the construction.
        assert!(plan.should_fault("buchi.complement_cache", 1));
        let mut poisoned = ComplementCache::new();
        let first = poisoned.complement(&m).unwrap();
        let again = poisoned.complement(&m).unwrap();
        assert_eq!(baseline, first);
        assert_eq!(baseline, again);
    }
}
