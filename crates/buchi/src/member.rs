//! Membership of lasso words.
//!
//! To decide `u · v^ω ∈ L(B)`, build the product of `B` with the word's
//! phase graph and look for a reachable cycle through an accepting
//! automaton state. The product has `|Q| * (|u| + |v|)` nodes.

use crate::automaton::Buchi;
use crate::graph::{tarjan, Graph};
use sl_omega::LassoWord;

/// Whether the automaton accepts the lasso word.
#[must_use]
pub fn accepts(b: &Buchi, word: &LassoWord) -> bool {
    let phases = word.phase_count();
    let n = b.num_states() * phases;
    let node = |q: usize, i: usize| q * phases + i;

    // Forward reachability from (initial, phase 0).
    let succ = |v: usize| -> Vec<usize> {
        let (q, i) = (v / phases, v % phases);
        let sym = word.at(i);
        let j = word.next_phase(i);
        b.successors(q, sym).iter().map(|&s| node(s, j)).collect()
    };
    let mut reach = vec![false; n];
    let start = node(b.initial(), 0);
    reach[start] = true;
    let mut stack = vec![start];
    while let Some(v) = stack.pop() {
        for w in succ(v) {
            if !reach[w] {
                reach[w] = true;
                stack.push(w);
            }
        }
    }

    // A reachable accepting product node on a cycle witnesses acceptance.
    let graph = Graph {
        n,
        succ: Box::new(move |v| std::borrow::Cow::Owned(succ(v))),
    };
    let scc = tarjan(&graph);
    (0..n).any(|v| {
        let q = v / phases;
        reach[v] && b.is_accepting(q) && crate::graph::on_cycle(&graph, &scc, v)
    })
}

impl Buchi {
    /// Whether the automaton accepts the lasso word; method form of
    /// [`accepts`].
    #[must_use]
    pub fn accepts(&self, word: &LassoWord) -> bool {
        accepts(self, word)
    }
}

/// A Büchi automaton viewed as a [`sl_omega::LinearProperty`] — the
/// language it recognizes.
pub struct BuchiProperty {
    automaton: Buchi,
    name: String,
}

impl BuchiProperty {
    /// Wraps an automaton as a property.
    #[must_use]
    pub fn new(automaton: Buchi, name: impl Into<String>) -> Self {
        BuchiProperty {
            automaton,
            name: name.into(),
        }
    }

    /// The wrapped automaton.
    #[must_use]
    pub fn automaton(&self) -> &Buchi {
        &self.automaton
    }
}

impl sl_omega::LinearProperty for BuchiProperty {
    fn contains(&self, word: &LassoWord) -> bool {
        accepts(&self.automaton, word)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::BuchiBuilder;
    use sl_omega::{all_lassos, Alphabet};

    fn gfa() -> (Alphabet, Buchi) {
        let sigma = Alphabet::ab();
        let a = sigma.symbol("a").unwrap();
        let b = sigma.symbol("b").unwrap();
        let mut builder = BuchiBuilder::new(sigma.clone());
        let q0 = builder.add_state(false);
        let qa = builder.add_state(true);
        builder.add_transition(q0, b, q0);
        builder.add_transition(q0, a, qa);
        builder.add_transition(qa, b, q0);
        builder.add_transition(qa, a, qa);
        (sigma, builder.build(q0))
    }

    #[test]
    fn gfa_membership_matches_semantics() {
        let (sigma, m) = gfa();
        let a = sigma.symbol("a").unwrap();
        for w in all_lassos(&sigma, 3, 3) {
            assert_eq!(m.accepts(&w), w.infinitely_often(a), "{w}");
        }
    }

    #[test]
    fn universal_accepts_everything() {
        let sigma = Alphabet::ab();
        let m = Buchi::universal(sigma.clone());
        for w in all_lassos(&sigma, 2, 2) {
            assert!(m.accepts(&w));
        }
    }

    #[test]
    fn empty_accepts_nothing() {
        let sigma = Alphabet::ab();
        let m = Buchi::empty_language(sigma.clone());
        for w in all_lassos(&sigma, 2, 2) {
            assert!(!m.accepts(&w));
        }
    }

    #[test]
    fn finite_visits_to_accepting_do_not_accept() {
        // Accepting state visited exactly once: a b^ω should be rejected
        // by an automaton whose only accepting state has no cycle.
        let sigma = Alphabet::ab();
        let a = sigma.symbol("a").unwrap();
        let b = sigma.symbol("b").unwrap();
        let mut builder = BuchiBuilder::new(sigma.clone());
        let q0 = builder.add_state(false);
        let qf = builder.add_state(true);
        let qs = builder.add_state(false);
        builder.add_transition(q0, a, qf);
        builder.add_transition(qf, b, qs);
        builder.add_transition(qs, b, qs);
        let m = builder.build(q0);
        assert!(!m.accepts(&sl_omega::LassoWord::parse(&sigma, "a", "b")));
    }

    #[test]
    fn property_adapter() {
        use sl_omega::LinearProperty;
        let (sigma, m) = gfa();
        let p = BuchiProperty::new(m, "GF a");
        assert_eq!(p.name(), "GF a");
        assert!(p.contains(&sl_omega::LassoWord::parse(&sigma, "", "a")));
        assert_eq!(p.automaton().num_states(), 2);
    }
}
