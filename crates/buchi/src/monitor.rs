//! Deterministic safety monitors and Schneider security automata.
//!
//! The paper notes (Section 1) Schneider's result that *enforceable*
//! security policies are exactly safety properties, and that the
//! enforcement mechanisms — security automata — are Büchi automata
//! recognizing safe languages. This module makes that executable: a
//! [`Monitor`] is the determinized closure automaton of a property, run
//! incrementally over a finite trace; the moment the trace leaves the
//! safety property's closure, the monitor reports an irrecoverable
//! [`Verdict::Violation`] (a "bad thing" has happened, and by the
//! definition of safety no extension can fix it).
//!
//! ## Hardening against untrusted input
//!
//! Monitors sit on the trust boundary: the traces they consume come
//! from the monitored system, not from the verifier. The monitor
//! therefore never panics on malformed input — a symbol outside the
//! policy's alphabet moves it to the sticky [`Verdict::Unknown`] state
//! (the trace can no longer be interpreted against the policy; only
//! [`Monitor::reset`] recovers), and [`Monitor::run_with_budget`] /
//! [`Monitor::step_checked`] bound the work spent on any one trace with
//! an [`sl_support::Budget`], in the spirit of quantitative/approximate
//! runtime monitoring (Henzinger–Mazzocchi–Saraç 2023).

use crate::automaton::{Buchi, StateId};
use crate::closure::{closure, live_states};
use sl_omega::{Symbol, Word};
use sl_support::{Budget, BudgetMeter, SlError};
use std::collections::HashMap;

/// The state of a monitored trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// All extensions within the closure remain possible so far.
    Ok,
    /// The trace has irrecoverably left the safety property.
    Violation,
    /// The trace contained a symbol the monitor cannot interpret
    /// (outside the policy's alphabet); no verdict about the property
    /// is possible from here on. Sticky until [`Monitor::reset`].
    Unknown,
}

/// A deterministic monitor for the safety closure of an ω-regular
/// property, built by subset construction over live states.
#[derive(Debug, Clone)]
pub struct Monitor {
    /// `table[state][symbol]` = successor; `usize::MAX` = dead.
    pub(crate) table: Vec<Vec<usize>>,
    pub(crate) initial: usize,
    /// Current state while running (`usize::MAX` once dead).
    current: usize,
}

pub(crate) const DEAD: usize = usize::MAX;
/// Sentinel for "saw a symbol outside the alphabet": distinct from
/// [`DEAD`] so `Unknown` and `Violation` stay distinguishable.
const UNKNOWN: usize = usize::MAX - 1;

impl Monitor {
    /// Builds the monitor for `lcl(L(b))` — the strongest safety
    /// property implied by `b` (Theorem 6's machine closure is exactly
    /// why this is the right monitor).
    #[must_use]
    pub fn new(b: &Buchi) -> Self {
        let safety = closure(b);
        // Subset construction over the (already all-live) closure.
        let live = live_states(&safety);
        let sigma = safety.alphabet().clone();
        let mut ids: HashMap<Vec<StateId>, usize> = HashMap::new();
        let mut table: Vec<Vec<usize>> = Vec::new();
        let start: Vec<StateId> =
            if safety.num_states() > 0 && live.get(safety.initial()) == Some(&true) {
                vec![safety.initial()]
            } else {
                Vec::new()
            };
        if start.is_empty() {
            // The property's closure is empty: everything violates.
            return Monitor {
                table: Vec::new(),
                initial: DEAD,
                current: DEAD,
            };
        }
        ids.insert(start.clone(), 0);
        table.push(vec![DEAD; sigma.len()]);
        let mut work = vec![start];
        while let Some(subset) = work.pop() {
            let from = ids[&subset];
            for sym in sigma.symbols() {
                let mut next: Vec<StateId> = subset
                    .iter()
                    .flat_map(|&q| safety.successors(q, sym).iter().copied())
                    .filter(|&q| live[q])
                    .collect();
                next.sort_unstable();
                next.dedup();
                if next.is_empty() {
                    continue; // leave as DEAD
                }
                let to = *ids.entry(next.clone()).or_insert_with(|| {
                    table.push(vec![DEAD; sigma.len()]);
                    work.push(next);
                    table.len() - 1
                });
                table[from][sym.index()] = to;
            }
        }
        Monitor {
            table,
            initial: 0,
            current: 0,
        }
    }

    /// Number of monitor states (excluding the implicit dead state).
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.table.len()
    }

    /// Resets the monitor to its initial state.
    pub fn reset(&mut self) {
        self.current = self.initial;
    }

    /// Feeds one symbol; returns the verdict after the step. Once
    /// violated, the verdict stays [`Verdict::Violation`] (safety is
    /// irremediable); a symbol outside the policy's alphabet moves the
    /// monitor to the sticky [`Verdict::Unknown`] state instead of
    /// panicking.
    pub fn step(&mut self, sym: Symbol) -> Verdict {
        if self.current == DEAD {
            return Verdict::Violation;
        }
        if self.current == UNKNOWN {
            return Verdict::Unknown;
        }
        // Bounds check against the table width: `Symbol` is a plain
        // index, so untrusted traces can carry out-of-alphabet values.
        let row = &self.table[self.current];
        match row.get(sym.index()) {
            Some(&next) => {
                self.current = next;
                self.verdict()
            }
            None => {
                self.current = UNKNOWN;
                Verdict::Unknown
            }
        }
    }

    /// The verdict [`Monitor::step`] *would* return for `sym`, without
    /// moving the monitor: a single table lookup, no allocation and no
    /// state change, so enforcement can probe an action before
    /// committing to it.
    #[must_use]
    pub fn peek(&self, sym: Symbol) -> Verdict {
        if self.current == DEAD {
            return Verdict::Violation;
        }
        if self.current == UNKNOWN {
            return Verdict::Unknown;
        }
        match self.table[self.current].get(sym.index()) {
            Some(&DEAD) => Verdict::Violation,
            Some(_) => Verdict::Ok,
            None => Verdict::Unknown,
        }
    }

    /// [`Monitor::step`] under a budget meter: charges one step first,
    /// so a hostile (or merely enormous) trace cannot consume unbounded
    /// monitor time. The monitor state is unchanged when the charge
    /// fails.
    ///
    /// # Errors
    ///
    /// Propagates [`SlError::BudgetExceeded`] / [`SlError::Cancelled`]
    /// from the meter.
    pub fn step_checked(&mut self, sym: Symbol, meter: &mut BudgetMeter) -> Result<Verdict, SlError> {
        meter.charge(1)?;
        Ok(self.step(sym))
    }

    /// The current verdict.
    #[must_use]
    pub fn verdict(&self) -> Verdict {
        match self.current {
            DEAD => Verdict::Violation,
            UNKNOWN => Verdict::Unknown,
            _ => Verdict::Ok,
        }
    }

    /// The current state as a portable `u64` for snapshot/restore:
    /// `u64::MAX` encodes the dead (violation) state, `u64::MAX - 1`
    /// the sticky unknown state, and anything else is a live subset
    /// state index. The subset construction is deterministic, so the
    /// encoding round-trips through a rebuild of the same policy.
    #[must_use]
    pub fn save_state(&self) -> u64 {
        match self.current {
            DEAD => u64::MAX,
            UNKNOWN => u64::MAX - 1,
            s => s as u64,
        }
    }

    /// Restores a state captured by [`Monitor::save_state`]. Returns
    /// `false` (monitor unchanged) when `raw` names no state of this
    /// table — the fail-closed answer for a corrupted snapshot.
    pub fn load_state(&mut self, raw: u64) -> bool {
        if raw == u64::MAX {
            self.current = DEAD;
            return true;
        }
        if raw == u64::MAX - 1 {
            self.current = UNKNOWN;
            return true;
        }
        match usize::try_from(raw) {
            Ok(s) if s < self.table.len() => {
                self.current = s;
                true
            }
            _ => false,
        }
    }

    /// Runs a whole finite trace from the initial state, returning the
    /// final verdict and the number of symbols consumed before the run
    /// settled (violation or unknown), or the trace length if it stayed
    /// [`Verdict::Ok`]. Never panics, whatever the trace contains.
    pub fn run(&mut self, trace: &Word) -> (Verdict, usize) {
        self.reset();
        for (i, &sym) in trace.as_slice().iter().enumerate() {
            match self.step(sym) {
                Verdict::Ok => {}
                settled => return (settled, i + 1),
            }
        }
        (Verdict::Ok, trace.len())
    }

    /// [`Monitor::run`] with a per-trace step budget: each symbol
    /// charges one step against a fresh meter for `budget`.
    ///
    /// # Errors
    ///
    /// [`SlError::BudgetExceeded`] / [`SlError::Cancelled`] when the
    /// budget runs out mid-trace; the error's `spent` reports how many
    /// symbols were consumed first.
    pub fn run_with_budget(
        &mut self,
        trace: &Word,
        budget: &Budget,
    ) -> Result<(Verdict, usize), SlError> {
        self.reset();
        let mut meter = budget.meter("buchi.monitor");
        for (i, &sym) in trace.as_slice().iter().enumerate() {
            match self.step_checked(sym, &mut meter)? {
                Verdict::Ok => {}
                settled => return Ok((settled, i + 1)),
            }
        }
        Ok((Verdict::Ok, trace.len()))
    }
}

/// A Schneider-style enforcement monitor: wraps a [`Monitor`] and
/// *truncates* the trace at the first violation, which is exactly the
/// power of an enforcement mechanism for a safety policy.
#[derive(Debug, Clone)]
pub struct SecurityAutomaton {
    monitor: Monitor,
    halted: bool,
}

impl SecurityAutomaton {
    /// Builds the enforcement automaton for the safety closure of the
    /// policy automaton.
    #[must_use]
    pub fn new(policy: &Buchi) -> Self {
        SecurityAutomaton {
            monitor: Monitor::new(policy),
            halted: false,
        }
    }

    /// Attempts to execute one action: returns `true` (action allowed)
    /// or `false` (action suppressed and the subject halted).
    ///
    /// Enforcement is fail-safe on untrusted input: an action outside
    /// the policy's alphabet cannot be judged, so it is suppressed and
    /// the subject halted (the deny-by-default reading of Schneider's
    /// enforcement model). This method never panics.
    pub fn submit(&mut self, action: Symbol) -> bool {
        if self.halted {
            return false;
        }
        // Peek: would the action violate (or be uninterpretable)? A
        // table lookup, not a clone — submit must stay O(1) however
        // large the monitor is.
        match self.monitor.peek(action) {
            Verdict::Ok => {
                self.monitor.step(action);
                true
            }
            Verdict::Violation | Verdict::Unknown => {
                self.halted = true;
                false
            }
        }
    }

    /// Whether the automaton has halted the subject.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Number of states of the underlying monitor (excluding the
    /// implicit dead state).
    #[must_use]
    pub fn monitor_states(&self) -> usize {
        self.monitor.num_states()
    }

    /// The longest prefix of `trace` the policy allows. Never panics:
    /// an uninterpretable symbol truncates the trace like a violation
    /// (fail-safe enforcement).
    pub fn enforce(&mut self, trace: &Word) -> Word {
        // Accumulate into a plain Vec and build the Word once at the
        // end: the persistent `Word::push` copies the whole prefix, so
        // pushing per symbol would make enforcement quadratic.
        let mut allowed: Vec<Symbol> = Vec::new();
        for &sym in trace.as_slice() {
            if !self.submit(sym) {
                break;
            }
            allowed.push(sym);
        }
        Word::new(&allowed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::BuchiBuilder;
    use sl_omega::Alphabet;

    fn sigma() -> Alphabet {
        Alphabet::ab()
    }

    /// "No b before the first a" style policy: G(b -> false) until a ...
    /// concretely: the safety automaton for "first symbol is a".
    fn first_a(s: &Alphabet) -> Buchi {
        let a = s.symbol("a").unwrap();
        let b = s.symbol("b").unwrap();
        let mut builder = BuchiBuilder::new(s.clone());
        let q0 = builder.add_state(true);
        let q1 = builder.add_state(true);
        builder.add_transition(q0, a, q1);
        builder.add_transition(q1, a, q1);
        builder.add_transition(q1, b, q1);
        builder.build(q0)
    }

    /// GF a — a pure liveness property; its closure is Σ^ω so the
    /// monitor never fires.
    fn inf_a(s: &Alphabet) -> Buchi {
        let a = s.symbol("a").unwrap();
        let b = s.symbol("b").unwrap();
        let mut builder = BuchiBuilder::new(s.clone());
        let q0 = builder.add_state(false);
        let qa = builder.add_state(true);
        builder.add_transition(q0, b, q0);
        builder.add_transition(q0, a, qa);
        builder.add_transition(qa, b, q0);
        builder.add_transition(qa, a, qa);
        builder.build(q0)
    }

    #[test]
    fn monitor_accepts_good_traces() {
        let s = sigma();
        let mut m = Monitor::new(&first_a(&s));
        let (v, consumed) = m.run(&Word::parse(&s, "a b a b"));
        assert_eq!(v, Verdict::Ok);
        assert_eq!(consumed, 4);
    }

    #[test]
    fn monitor_flags_bad_prefix_at_first_step() {
        let s = sigma();
        let mut m = Monitor::new(&first_a(&s));
        let (v, consumed) = m.run(&Word::parse(&s, "b a a"));
        assert_eq!(v, Verdict::Violation);
        assert_eq!(consumed, 1);
    }

    #[test]
    fn violations_are_irremediable() {
        let s = sigma();
        let mut m = Monitor::new(&first_a(&s));
        m.run(&Word::parse(&s, "b"));
        // Feeding more symbols never recovers.
        assert_eq!(m.step(s.symbol("a").unwrap()), Verdict::Violation);
        // But a reset does.
        m.reset();
        assert_eq!(m.verdict(), Verdict::Ok);
    }

    #[test]
    fn liveness_policies_never_fire() {
        // Monitoring can only enforce safety: the monitor of GF a is the
        // monitor of its closure Σ^ω and never rejects — precisely
        // Schneider's point that liveness is unenforceable.
        let s = sigma();
        let mut m = Monitor::new(&inf_a(&s));
        let (v, _) = m.run(&Word::parse(&s, "b b b b b b"));
        assert_eq!(v, Verdict::Ok);
    }

    #[test]
    fn empty_policy_rejects_everything() {
        let s = sigma();
        let mut m = Monitor::new(&Buchi::empty_language(s.clone()));
        assert_eq!(m.verdict(), Verdict::Violation);
        let (v, consumed) = m.run(&Word::parse(&s, "a"));
        assert_eq!(v, Verdict::Violation);
        assert_eq!(consumed, 1);
    }

    #[test]
    fn security_automaton_truncates() {
        let s = sigma();
        let mut sa = SecurityAutomaton::new(&first_a(&s));
        let allowed = sa.enforce(&Word::parse(&s, "a a b a"));
        assert_eq!(allowed, Word::parse(&s, "a a b a"));
        assert!(!sa.halted());

        let mut sa = SecurityAutomaton::new(&first_a(&s));
        let allowed = sa.enforce(&Word::parse(&s, "b a a"));
        assert_eq!(allowed, Word::empty());
        assert!(sa.halted());
        // Once halted, everything is suppressed.
        assert!(!sa.submit(s.symbol("a").unwrap()));
    }

    #[test]
    fn monitor_is_deterministic_and_small() {
        let s = sigma();
        let m = Monitor::new(&first_a(&s));
        // Subset construction of a 2-state safety automaton stays small.
        assert!(m.num_states() <= 4);
    }

    #[test]
    fn out_of_alphabet_symbol_yields_unknown_not_panic() {
        let s = sigma();
        let mut m = Monitor::new(&first_a(&s));
        let bogus = sl_omega::Symbol(999);
        assert_eq!(m.step(bogus), Verdict::Unknown);
        // Unknown is sticky: later valid symbols cannot restore Ok...
        assert_eq!(m.step(s.symbol("a").unwrap()), Verdict::Unknown);
        assert_eq!(m.verdict(), Verdict::Unknown);
        // ...but a reset recovers fully.
        m.reset();
        assert_eq!(m.verdict(), Verdict::Ok);
        assert_eq!(m.step(s.symbol("a").unwrap()), Verdict::Ok);
    }

    #[test]
    fn run_settles_on_unknown_with_position() {
        let s = sigma();
        let mut m = Monitor::new(&first_a(&s));
        let trace = Word::new(&[
            s.symbol("a").unwrap(),
            sl_omega::Symbol(7),
            s.symbol("a").unwrap(),
        ]);
        let (v, consumed) = m.run(&trace);
        assert_eq!(v, Verdict::Unknown);
        assert_eq!(consumed, 2, "the malformed symbol is counted");
    }

    #[test]
    fn violation_beats_unknown_when_already_dead() {
        // Once dead, even malformed symbols report Violation — safety
        // verdicts are irremediable and take precedence.
        let s = sigma();
        let mut m = Monitor::new(&first_a(&s));
        m.run(&Word::parse(&s, "b"));
        assert_eq!(m.step(sl_omega::Symbol(500)), Verdict::Violation);
    }

    #[test]
    fn run_with_budget_bounds_trace_work() {
        use sl_support::Budget;
        let s = sigma();
        let mut m = Monitor::new(&first_a(&s));
        let trace = Word::parse(&s, "a b a b a b");
        // Enough budget: same answer as the unbudgeted run.
        let (v, consumed) = m.run_with_budget(&trace, &Budget::unlimited()).unwrap();
        assert_eq!((v, consumed), (Verdict::Ok, 6));
        // Too little budget: typed error with the spent count.
        let err = m
            .run_with_budget(&trace, &Budget::unlimited().with_steps(3))
            .unwrap_err();
        assert!(err.is_budget_exceeded());
        assert_eq!(err.spent(), Some(4));
    }

    /// A long deterministic "at most `n-1` b's" chain: the monitor has
    /// the same state count as the automaton, so it makes a good probe
    /// for state-count-dependent work in the hot path.
    fn chain(s: &Alphabet, n: usize) -> Buchi {
        let a = s.symbol("a").unwrap();
        let b = s.symbol("b").unwrap();
        let mut builder = BuchiBuilder::new(s.clone());
        let states: Vec<_> = (0..n).map(|_| builder.add_state(true)).collect();
        for i in 0..n {
            builder.add_transition(states[i], a, states[i]);
            if i + 1 < n {
                builder.add_transition(states[i], b, states[i + 1]);
            }
        }
        builder.build(states[0])
    }

    #[test]
    fn peek_matches_step_without_moving() {
        let s = sigma();
        let mut m = Monitor::new(&first_a(&s));
        for sym in [s.symbol("a").unwrap(), s.symbol("b").unwrap(), sl_omega::Symbol(99)] {
            let peeked = m.peek(sym);
            let before = m.verdict();
            assert_eq!(m.verdict(), before, "peek must not move the monitor");
            let mut probe = m.clone();
            assert_eq!(probe.step(sym), peeked, "peek disagrees with step on {sym:?}");
        }
        // After a violation, peek keeps reporting Violation.
        m.run(&Word::parse(&s, "b"));
        assert_eq!(m.peek(s.symbol("a").unwrap()), Verdict::Violation);
        assert_eq!(m.peek(sl_omega::Symbol(7)), Verdict::Violation);
    }

    #[test]
    fn submit_does_no_allocation_scale_work() {
        // Regression: `submit` used to clone the whole monitor table
        // per action. On a 4000-state monitor that is allocation-bound
        // (minutes for this loop); a table-lookup peek finishes in
        // well under a second even on slow CI.
        let s = sigma();
        let policy = chain(&s, 4000);
        let mut sa = SecurityAutomaton::new(&policy);
        assert!(sa.monitor_states() >= 4000);
        let a = s.symbol("a").unwrap();
        let start = std::time::Instant::now();
        for _ in 0..50_000 {
            assert!(sa.submit(a));
        }
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "50k submits on a 4000-state monitor took {:?} — submit is doing \
             state-count-proportional work again",
            start.elapsed()
        );
    }

    #[test]
    fn enforce_handles_long_traces_linearly() {
        // Regression: `enforce` used to rebuild the allowed prefix with
        // the persistent `Word::push`, copying O(n²) symbols. 100k
        // symbols would take minutes; linear accumulation is instant.
        let s = sigma();
        let policy = chain(&s, 4);
        let a = s.symbol("a").unwrap();
        let trace: Word = std::iter::repeat(a).take(100_000).collect();
        let mut sa = SecurityAutomaton::new(&policy);
        let start = std::time::Instant::now();
        let allowed = sa.enforce(&trace);
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "enforcing a 100k-symbol trace took {:?} — prefix rebuilding is quadratic again",
            start.elapsed()
        );
        assert_eq!(allowed, trace);
        assert!(!sa.halted());
        // And a trace that dies midway still truncates correctly.
        let b = s.symbol("b").unwrap();
        let mixed: Word = std::iter::repeat(a)
            .take(10)
            .chain(std::iter::repeat(b).take(10))
            .collect();
        let mut sa = SecurityAutomaton::new(&policy);
        let allowed = sa.enforce(&mixed);
        assert_eq!(allowed.len(), 13, "3 b's pass, the 4th kills the chain");
        assert!(sa.halted());
    }

    #[test]
    fn state_round_trips_across_a_rebuild() {
        let s = sigma();
        let policy = first_a(&s);
        let a = s.symbol("a").unwrap();
        let b = s.symbol("b").unwrap();
        // Ok state mid-trace.
        let mut m = Monitor::new(&policy);
        m.step(a);
        m.step(b);
        let saved = m.save_state();
        let mut fresh = Monitor::new(&policy);
        assert!(fresh.load_state(saved));
        assert_eq!(fresh.verdict(), Verdict::Ok);
        assert_eq!(fresh.step(a), m.step(a), "restored monitor steps identically");
        // Sentinels survive too.
        let mut dead = Monitor::new(&policy);
        dead.step(b);
        let mut fresh = Monitor::new(&policy);
        assert!(fresh.load_state(dead.save_state()));
        assert_eq!(fresh.verdict(), Verdict::Violation);
        let mut unk = Monitor::new(&policy);
        unk.step(sl_omega::Symbol(999));
        let mut fresh = Monitor::new(&policy);
        assert!(fresh.load_state(unk.save_state()));
        assert_eq!(fresh.verdict(), Verdict::Unknown);
        // Out-of-range raw states are rejected without moving anything.
        let before = fresh.save_state();
        assert!(!fresh.load_state(1_000_000));
        assert_eq!(fresh.save_state(), before);
    }

    #[test]
    fn security_automaton_halts_on_uninterpretable_action() {
        let s = sigma();
        let mut sa = SecurityAutomaton::new(&first_a(&s));
        assert!(sa.submit(s.symbol("a").unwrap()));
        assert!(!sa.submit(sl_omega::Symbol(42)), "fail-safe deny");
        assert!(sa.halted());
        // Enforce never panics on a trace with a stray symbol.
        let mut sa = SecurityAutomaton::new(&first_a(&s));
        let trace = Word::new(&[
            s.symbol("a").unwrap(),
            sl_omega::Symbol(42),
            s.symbol("a").unwrap(),
        ]);
        let allowed = sa.enforce(&trace);
        assert_eq!(allowed, Word::parse(&s, "a"));
        assert!(sa.halted());
    }
}
