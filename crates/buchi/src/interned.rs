//! Interned automaton nodes with incremental simulation maintenance —
//! the quotient-first core behind the on-the-fly antichain engine.
//!
//! Every inclusion/equivalence/universality query starts by quotienting
//! its operands by direct simulation ([`crate::reduce`]), and before
//! this module existed that quotient was recomputed from scratch on
//! every query — the dominant cost at 10^4–10^5 states, and pure waste
//! in a daemon whose registry changes only on `define`/`redefine`. The
//! fix has three parts:
//!
//! * **[`InternedGraph`]** — an arena of interned automaton nodes with
//!   cheap node-by-structural-key lookup
//!   ([`Buchi::structural_hash`] + an equality collision check). A node
//!   pins the raw automaton, its reachable part, its greatest-fixpoint
//!   simulation rows, and the resulting quotient, so repeat queries are
//!   an 8-byte hash probe instead of an `O(n²)` refinement.
//! * **Incremental maintenance** — [`InternedGraph::advance`] interns a
//!   *successor version* of an automaton (the `redefine` path) by
//!   recomputing simulation only where the edit can matter. States are
//!   partitioned per SCC of the new automaton into *clean* (index,
//!   acceptance, and transition rows identical to the old version, and
//!   every successor SCC clean — i.e. the whole reachable cone is the
//!   same sub-automaton) and *dirty*. Clean × clean pairs are seeded
//!   with the old fixpoint's verdicts; every pair involving a dirty
//!   state restarts from the optimistic acceptance-consistent top. The
//!   standard refinement then runs — and because any start between the
//!   greatest fixpoint and top converges to exactly that fixpoint (the
//!   loop never drops a true pair, and its stable point is a
//!   post-fixpoint), the incremental quotient is **bit-identical** to a
//!   from-scratch one; `tests/interned_core.rs` holds that bar over
//!   seeded 50+-mutation histories.
//! * **[`QuotientCache`]** — striped `Mutex` shards of [`InternedGraph`]
//!   (the [`crate::incl::ComplementCache`] idiom: hash-selected stripe,
//!   cap-and-clear, poison absorption, fault-drill invalidation at site
//!   `"buchi.quotient_cache"`). One process-wide instance backs the
//!   plain entry points ([`shared_quotient_cache`]); the `sld` daemon
//!   owns a private instance so its `stats` counters are a
//!   deterministic function of the session.
//!
//! The quotient pipeline here trims unreachable states *first* and
//! computes simulation over the reachable part only — on the
//! garbage-padded inputs of the scaling bench (`e16_scale`) that turns
//! an `O(n²)` preprocessing bill into `O(core²)`.

use crate::automaton::Buchi;
use crate::graph::{tarjan, Graph};
use crate::reduce::{initial_rows, quotient_from_rows, refine_rows, successor_sets};
use sl_lattice::Bitset;
use sl_support::fault::{self, FaultPlan};
use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Test-only engine sabotage, used by the conformance fuzzer to prove
/// the incremental-vs-scratch differential oracle catches a real
/// invalidation bug. Not part of the public API; never enabled outside
/// dedicated drill tests.
#[doc(hidden)]
pub mod sabotage {
    use std::sync::atomic::{AtomicBool, Ordering};

    static BREAK_DIRTY_TRACKING: AtomicBool = AtomicBool::new(false);

    /// When enabled, [`super::InternedGraph::advance`] marks an SCC
    /// dirty only when one of its *own* states changed, skipping the
    /// propagation from dirty successor SCCs. A state whose cone
    /// changed downstream then keeps stale simulation verdicts as its
    /// seed; stale `false` bits below the true fixpoint can never be
    /// re-added by the (removal-only) refinement, so the incremental
    /// quotient drifts from the from-scratch one — exactly the
    /// disagreement `slfuzz --sabotage dirty-scc-invalidation` must
    /// detect and shrink.
    pub fn set_break_dirty_tracking(on: bool) {
        BREAK_DIRTY_TRACKING.store(on, Ordering::Relaxed);
    }

    /// Whether the drill flag is currently set.
    #[must_use]
    pub fn dirty_tracking_broken() -> bool {
        BREAK_DIRTY_TRACKING.load(Ordering::Relaxed)
    }
}

/// Global entry cap for the shared quotient cache; past it a shard is
/// cleared rather than grown. Nodes carry `O(reachable²)` bits of
/// simulation rows, so the cap is tighter than the complement cache's.
const QUOTIENT_CACHE_CAP: usize = 64;

/// Stripe count for [`QuotientCache`]. Selection is
/// `structural_hash % shards`, so repeat queries for one automaton
/// serialize through one stripe while distinct automata proceed
/// concurrently.
const QUOTIENT_CACHE_SHARDS: usize = 8;

/// The fault-injection site at which a firing drill drops a memoized
/// node and forces a behavior-preserving recomputation.
pub const QUOTIENT_FAULT_SITE: &str = "buchi.quotient_cache";

/// Counters describing how an [`InternedGraph`] (or a whole
/// [`QuotientCache`], summed over shards) has been used.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuotientCacheStats {
    /// Lookups answered from an interned node.
    pub hits: usize,
    /// Lookups that computed a quotient from scratch and interned it.
    /// Disjoint from `collisions`: every lookup is exactly one of hit,
    /// miss, or collision.
    pub misses: usize,
    /// Nodes currently interned.
    pub entries: usize,
    /// Nodes dropped by fault injection (site
    /// [`QUOTIENT_FAULT_SITE`]) — each one forced a
    /// behavior-preserving recomputation.
    pub invalidations: usize,
    /// Lookups whose 64-bit structural hash matched an interned node
    /// for a *different* automaton; the quotient was recomputed
    /// uncached, so a collision costs time but never correctness.
    pub collisions: usize,
    /// Incremental [`InternedGraph::advance`] calls (the
    /// `define`/`redefine` path).
    pub advances: usize,
    /// SCCs whose simulation verdicts an advance had to recompute.
    pub dirty_sccs: usize,
    /// SCCs whose verdicts an advance carried over from the previous
    /// version unchanged.
    pub clean_sccs: usize,
}

/// What one [`InternedGraph::advance`] did: how much of the new
/// automaton's SCC condensation was re-derived vs. carried over.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdvanceReport {
    /// SCCs re-derived (locally edited, index-shifted, or downstream of
    /// an edit).
    pub dirty_sccs: usize,
    /// SCCs whose simulation verdicts were reused from the old version.
    pub clean_sccs: usize,
}

/// One interned automaton version: the raw automaton (the equality
/// check behind the hash key), its reachable part, the greatest-
/// fixpoint simulation rows over that part, and the quotient.
#[derive(Debug, Clone)]
pub struct InternedNode {
    automaton: Buchi,
    trimmed: Arc<Buchi>,
    rows: Arc<Vec<Bitset>>,
    quotient: Arc<Buchi>,
}

impl InternedNode {
    /// The simulation quotient of the interned automaton.
    #[must_use]
    pub fn quotient(&self) -> Arc<Buchi> {
        Arc::clone(&self.quotient)
    }

    /// The greatest-fixpoint simulation rows over the reachable part
    /// (`rows[q] = { r | q ≤ r }`), exposed so differential tests can
    /// compare incremental and from-scratch fixpoints bit for bit.
    #[must_use]
    pub fn rows(&self) -> Arc<Vec<Bitset>> {
        Arc::clone(&self.rows)
    }
}

/// The from-scratch quotient pipeline: trim to the reachable part,
/// compute the simulation fixpoint there, quotient. This is the
/// function every cached or incremental path must agree with bit for
/// bit; it is `reduce ∘ trim` with the fixpoint rows exposed.
fn compute_node(b: &Buchi) -> InternedNode {
    let trimmed = b.trim_unreachable();
    let succ = successor_sets(&trimmed);
    let mut rows = initial_rows(&trimmed);
    refine_rows(&succ, &mut rows);
    let quotient = quotient_from_rows(&trimmed, &rows);
    InternedNode {
        automaton: b.clone(),
        trimmed: Arc::new(trimmed),
        rows: Arc::new(rows),
        quotient: Arc::new(quotient),
    }
}

/// The trim-first simulation quotient of `b`, computed from scratch
/// with no cache involved — the differential reference for
/// [`InternedGraph::quotient`] and [`InternedGraph::advance`].
#[must_use]
pub fn scratch_quotient(b: &Buchi) -> Buchi {
    compute_node(b).quotient.as_ref().clone()
}

/// Seeds `rows` (arriving as `initial_rows(new_t)`) with the old
/// fixpoint's verdicts on clean × clean pairs. See the module docs for
/// the clean/dirty definition and the convergence argument.
fn seed_rows(
    old_t: &Buchi,
    old_rows: &[Bitset],
    new_t: &Buchi,
    rows: &mut [Bitset],
) -> AdvanceReport {
    let n_new = new_t.num_states();
    let n_old = old_t.num_states();
    // A state is locally unchanged when its index, acceptance bit, and
    // every per-symbol successor row survived the edit verbatim.
    let mut local_same = vec![false; n_new];
    for (q, same) in local_same.iter_mut().enumerate().take(n_new.min(n_old)) {
        *same = new_t.is_accepting(q) == old_t.is_accepting(q)
            && new_t
                .alphabet()
                .symbols()
                .all(|s| new_t.successors(q, s) == old_t.successors(q, s));
    }
    let graph = Graph {
        n: n_new,
        succ: Box::new(|q| Cow::Borrowed(new_t.all_successors(q))),
    };
    let scc = tarjan(&graph);
    let mut dirty = vec![false; scc.count];
    for q in 0..n_new {
        if !local_same[q] {
            dirty[scc.component[q]] = true;
        }
    }
    // Dirtiness propagates backward from successors: tarjan numbers
    // components in reverse topological order, so every successor SCC
    // has a smaller id and one ascending pass settles the partition.
    if !sabotage::dirty_tracking_broken() {
        let members = scc.members();
        for c in 0..scc.count {
            if dirty[c] {
                continue;
            }
            'scan: for &q in &members[c] {
                for &r in new_t.all_successors(q) {
                    if dirty[scc.component[r]] {
                        dirty[c] = true;
                        break 'scan;
                    }
                }
            }
        }
    }
    let dirty_sccs = dirty.iter().filter(|&&d| d).count();
    // A clean state's reachable cone is bit-identical to the old
    // version's, and a simulation verdict depends only on the two
    // cones — so on clean × clean pairs the old fixpoint bit *is* the
    // new fixpoint bit. Keep the optimistic top everywhere else.
    let clean_states: Vec<usize> = (0..n_new)
        .filter(|&q| !dirty[scc.component[q]])
        .collect();
    for &q in &clean_states {
        for &r in &clean_states {
            if !old_rows[q].contains(r) {
                rows[q].remove(r);
            }
        }
    }
    AdvanceReport {
        dirty_sccs,
        clean_sccs: scc.count - dirty_sccs,
    }
}

/// An arena of interned automaton versions with structural-key lookup
/// and incremental quotient maintenance. Single-threaded; the sharded
/// [`QuotientCache`] wraps it for concurrent use.
#[derive(Debug)]
pub struct InternedGraph {
    arena: Vec<InternedNode>,
    index: HashMap<u64, usize>,
    cap: usize,
    plan: FaultPlan,
    hits: usize,
    misses: usize,
    invalidations: usize,
    collisions: usize,
    advances: usize,
    dirty_sccs: usize,
    clean_sccs: usize,
    lookups: u64,
}

impl Default for InternedGraph {
    fn default() -> Self {
        Self::with_cap(QUOTIENT_CACHE_CAP)
    }
}

impl InternedGraph {
    /// An empty arena with the default node cap.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty arena clearing itself past `cap` interned nodes,
    /// under the process-wide fault plan.
    #[must_use]
    pub fn with_cap(cap: usize) -> Self {
        Self::with_cap_and_fault(cap, *fault::global())
    }

    /// [`InternedGraph::with_cap`] with the fault drill pinned to an
    /// explicit plan — owners that pin their own plan (the `sld`
    /// daemon's golden-transcript tests) stay byte-deterministic even
    /// when the process runs under the environment drill.
    #[must_use]
    pub fn with_cap_and_fault(cap: usize, plan: FaultPlan) -> Self {
        InternedGraph {
            arena: Vec::new(),
            index: HashMap::new(),
            cap: cap.max(1),
            plan,
            hits: 0,
            misses: 0,
            invalidations: 0,
            collisions: 0,
            advances: 0,
            dirty_sccs: 0,
            clean_sccs: 0,
            lookups: 0,
        }
    }

    /// The interned node for `b`, if present (hash probe + equality
    /// check; never counts toward the hit/miss stats).
    #[must_use]
    pub fn node(&self, b: &Buchi) -> Option<&InternedNode> {
        let slot = *self.index.get(&b.structural_hash())?;
        let node = &self.arena[slot];
        (node.automaton == *b).then_some(node)
    }

    fn intern(&mut self, key: u64, node: InternedNode) -> usize {
        if let Some(&slot) = self.index.get(&key) {
            // Re-intern under an occupied key (advance over a stale
            // occupant): replace in place, arena slot count unchanged.
            self.arena[slot] = node;
            return slot;
        }
        if self.index.len() >= self.cap {
            self.arena.clear();
            self.index.clear();
        }
        self.arena.push(node);
        let slot = self.arena.len() - 1;
        self.index.insert(key, slot);
        slot
    }

    /// The simulation quotient of `b` (over its reachable part),
    /// computed at most once per distinct automaton.
    ///
    /// Under a fault drill (the plan pinned at construction, defaulting
    /// to the process-wide one; site [`QUOTIENT_FAULT_SITE`]), a firing
    /// lookup drops the interned node and recomputes — a
    /// behavior-preserving degradation observable via
    /// [`QuotientCacheStats::invalidations`].
    pub fn quotient(&mut self, b: &Buchi) -> Arc<Buchi> {
        let lookup = self.lookups;
        self.lookups += 1;
        let key = b.structural_hash();
        if self.plan.should_fault(QUOTIENT_FAULT_SITE, lookup)
            && self
                .index
                .get(&key)
                .is_some_and(|&slot| self.arena[slot].automaton == *b)
        {
            self.index.remove(&key);
            self.invalidations += 1;
        }
        if let Some(&slot) = self.index.get(&key) {
            if self.arena[slot].automaton == *b {
                self.hits += 1;
                return Arc::clone(&self.arena[slot].quotient);
            }
            // Hash collision with a distinct automaton: keep the first
            // occupant (deterministic) and recompute uncached.
            self.collisions += 1;
            return Arc::new(scratch_quotient(b));
        }
        self.misses += 1;
        let node = compute_node(b);
        let quotient = Arc::clone(&node.quotient);
        self.intern(key, node);
        quotient
    }

    /// Interns `new` as the successor version of `old` (the
    /// `define`/`redefine` path), seeding its simulation fixpoint from
    /// `old`'s interned node where their SCCs are provably unchanged.
    /// Falls back to a full computation when `old` was never interned,
    /// the alphabets differ, or `new` is already interned (then a pure
    /// hit). The resulting node is bit-identical to a from-scratch
    /// [`InternedGraph::quotient`] of `new` in every case.
    pub fn advance(&mut self, old: &Buchi, new: &Buchi) -> AdvanceReport {
        let old_node = self.node(old).cloned();
        self.advance_from(old_node.as_ref(), new)
    }

    /// [`InternedGraph::advance`] with the old node supplied by the
    /// caller — the cross-shard form [`QuotientCache::advance`] needs.
    pub fn advance_from(&mut self, old: Option<&InternedNode>, new: &Buchi) -> AdvanceReport {
        self.advances += 1;
        let key = new.structural_hash();
        if let Some(&slot) = self.index.get(&key) {
            if self.arena[slot].automaton == *new {
                // The target version is already interned (e.g. a
                // redefine toggled back): nothing to recompute.
                self.hits += 1;
                return AdvanceReport::default();
            }
        }
        let trimmed = new.trim_unreachable();
        let succ = successor_sets(&trimmed);
        let mut rows = initial_rows(&trimmed);
        let report = match old {
            Some(o) if o.trimmed.alphabet() == trimmed.alphabet() => {
                seed_rows(&o.trimmed, &o.rows, &trimmed, &mut rows)
            }
            _ => AdvanceReport::default(),
        };
        refine_rows(&succ, &mut rows);
        let quotient = quotient_from_rows(&trimmed, &rows);
        self.misses += 1;
        self.dirty_sccs += report.dirty_sccs;
        self.clean_sccs += report.clean_sccs;
        self.intern(
            key,
            InternedNode {
                automaton: new.clone(),
                trimmed: Arc::new(trimmed),
                rows: Arc::new(rows),
                quotient: Arc::new(quotient),
            },
        );
        report
    }

    /// Usage counters.
    #[must_use]
    pub fn stats(&self) -> QuotientCacheStats {
        QuotientCacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.index.len(),
            invalidations: self.invalidations,
            collisions: self.collisions,
            advances: self.advances,
            dirty_sccs: self.dirty_sccs,
            clean_sccs: self.clean_sccs,
        }
    }

    /// Drops all nodes and resets the counters.
    pub fn reset(&mut self) {
        self.arena.clear();
        self.index.clear();
        self.hits = 0;
        self.misses = 0;
        self.invalidations = 0;
        self.collisions = 0;
        self.advances = 0;
        self.dirty_sccs = 0;
        self.clean_sccs = 0;
        self.lookups = 0;
    }
}

/// A concurrency-safe quotient cache: striped `Mutex`-guarded
/// [`InternedGraph`] shards selected by structural hash (the
/// [`crate::incl::ComplementCache`] sharding idiom). The `sld` daemon
/// owns one instance per service — so its `stats` counters are a
/// deterministic function of the session — and the plain on-the-fly
/// entry points share the process-wide [`shared_quotient_cache`].
#[derive(Debug)]
pub struct QuotientCache {
    shards: Vec<Mutex<InternedGraph>>,
}

impl Default for QuotientCache {
    fn default() -> Self {
        Self::new()
    }
}

impl QuotientCache {
    /// A cache with the default shard count and node cap, under the
    /// process-wide fault plan.
    #[must_use]
    pub fn new() -> Self {
        Self::with_fault(*fault::global())
    }

    /// [`QuotientCache::new`] with the fault drill pinned to an
    /// explicit plan; the `sld` daemon passes its `ServiceConfig`
    /// plan through so transcript-pinning tests stay byte-identical
    /// under the environment drill.
    #[must_use]
    pub fn with_fault(plan: FaultPlan) -> Self {
        let per_shard = (QUOTIENT_CACHE_CAP / QUOTIENT_CACHE_SHARDS).max(1);
        QuotientCache {
            shards: (0..QUOTIENT_CACHE_SHARDS)
                .map(|_| Mutex::new(InternedGraph::with_cap_and_fault(per_shard, plan)))
                .collect(),
        }
    }

    /// The shard responsible for `key`, locked. Mutex poisoning is
    /// absorbed: the cache is semantically transparent, so state
    /// abandoned by a panicking thread is still a valid memo table.
    fn shard(&self, key: u64) -> MutexGuard<'_, InternedGraph> {
        let index = (key % self.shards.len() as u64) as usize;
        self.shards[index]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The simulation quotient of `b`, computed at most once per
    /// distinct automaton across all threads sharing this cache.
    #[must_use]
    pub fn quotient(&self, b: &Buchi) -> Arc<Buchi> {
        self.shard(b.structural_hash()).quotient(b)
    }

    /// Interns `new` as the successor version of `old`, seeding from
    /// `old`'s node when it is interned (see
    /// [`InternedGraph::advance`]). The old shard is released before
    /// the new shard is taken, so no two stripes are ever held at once.
    pub fn advance(&self, old: &Buchi, new: &Buchi) -> AdvanceReport {
        let old_node = self.shard(old.structural_hash()).node(old).cloned();
        self.shard(new.structural_hash())
            .advance_from(old_node.as_ref(), new)
    }

    /// Summed counters across shards (`entries` is the total resident).
    #[must_use]
    pub fn stats(&self) -> QuotientCacheStats {
        let mut total = QuotientCacheStats::default();
        for shard in &self.shards {
            let stats = shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .stats();
            total.hits += stats.hits;
            total.misses += stats.misses;
            total.entries += stats.entries;
            total.invalidations += stats.invalidations;
            total.collisions += stats.collisions;
            total.advances += stats.advances;
            total.dirty_sccs += stats.dirty_sccs;
            total.clean_sccs += stats.clean_sccs;
        }
        total
    }

    /// Empties every shard and zeroes its counters (bench cold/warm
    /// isolation).
    pub fn reset(&self) {
        for shard in &self.shards {
            shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .reset();
        }
    }
}

/// The process-wide quotient cache backing the plain on-the-fly entry
/// points ([`crate::antichain::included_onthefly`] and the
/// `SL_INCL_ENGINE` dispatchers).
pub fn shared_quotient_cache() -> &'static QuotientCache {
    static SHARED: OnceLock<QuotientCache> = OnceLock::new();
    SHARED.get_or_init(QuotientCache::new)
}

/// Summed counters of the shared quotient cache — what
/// [`crate::incl::engine_stats`] reports under `quotient_cache`.
#[must_use]
pub fn shared_quotient_cache_stats() -> QuotientCacheStats {
    shared_quotient_cache().stats()
}

/// Empties every shard of the shared quotient cache and zeroes its
/// counters (bench cold/warm isolation).
pub fn reset_shared_quotient_cache() {
    shared_quotient_cache().reset();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::BuchiBuilder;
    use crate::random::{random_buchi, RandomConfig};
    use crate::reduce::reduce;
    use sl_omega::Alphabet;

    fn sigma() -> Alphabet {
        Alphabet::ab()
    }

    fn pool_automaton(seed: u64) -> Buchi {
        random_buchi(
            &sigma(),
            seed,
            RandomConfig {
                states: 6,
                density_percent: 55,
                accepting_percent: 40,
            },
        )
    }

    #[test]
    fn scratch_quotient_matches_reduce_on_trimmed_input() {
        for seed in 0..20u64 {
            let b = pool_automaton(seed);
            let trimmed = b.trim_unreachable();
            assert_eq!(
                scratch_quotient(&b),
                reduce(&trimmed),
                "seed {seed}: the cached pipeline is reduce ∘ trim"
            );
        }
    }

    #[test]
    fn interned_lookup_hits_on_repeat_and_counts_misses_once() {
        let mut graph = InternedGraph::new();
        let b = pool_automaton(3);
        let first = graph.quotient(&b);
        let second = graph.quotient(&b);
        assert_eq!(first, second);
        let stats = graph.stats();
        assert_eq!(stats.misses, 1 + stats.invalidations);
        assert_eq!(stats.hits, 1 - stats.invalidations.min(1));
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn hash_collisions_recompute_uncached() {
        let mut graph = InternedGraph::new();
        let planted = pool_automaton(1);
        let queried = pool_automaton(2);
        assert_ne!(planted, queried);
        // Plant the wrong automaton under the queried key, simulating a
        // 64-bit structural-hash collision.
        let mut node = compute_node(&planted);
        node.automaton = node.automaton.clone();
        let key = queried.structural_hash();
        graph.intern(key, node);
        let out = graph.quotient(&queried);
        assert_eq!(*out, scratch_quotient(&queried));
        let stats = graph.stats();
        assert_eq!(stats.collisions, 1);
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 0);
    }

    #[test]
    fn pinned_fault_plan_governs_invalidations() {
        let b = pool_automaton(3);
        // An always-firing pinned plan drills the invalidation path:
        // each repeat lookup drops the node and recomputes, but the
        // answers stay bit-identical (behavior-preserving degradation).
        let mut drilled = InternedGraph::with_cap_and_fault(8, FaultPlan::new(7, 1.0));
        let first = drilled.quotient(&b);
        let second = drilled.quotient(&b);
        assert_eq!(first, second);
        assert!(drilled.stats().invalidations >= 1, "{:?}", drilled.stats());
        // A pinned-disabled plan never invalidates, regardless of the
        // process environment — what keeps the sld golden transcripts
        // byte-identical under the verify.sh fault drill.
        let mut quiet = InternedGraph::with_cap_and_fault(8, FaultPlan::disabled());
        quiet.quotient(&b);
        quiet.quotient(&b);
        let stats = quiet.stats();
        assert_eq!((stats.invalidations, stats.hits, stats.misses), (0, 1, 1));
    }

    #[test]
    fn cap_and_clear_bounds_the_arena() {
        let mut graph = InternedGraph::with_cap(4);
        for seed in 0..20u64 {
            graph.quotient(&pool_automaton(seed));
        }
        assert!(graph.stats().entries <= 4);
    }

    #[test]
    fn advance_is_bit_identical_to_scratch() {
        let s = sigma();
        let a_sym = s.symbol("a").unwrap();
        for seed in 0..20u64 {
            let old = pool_automaton(seed);
            // Edit: add a fresh accepting state reachable from the
            // initial state — downstream SCCs stay clean, upstream ones
            // go dirty.
            let mut builder = BuchiBuilder::new(s.clone());
            for q in 0..old.num_states() {
                builder.add_state(old.is_accepting(q));
            }
            let extra = builder.add_state(true);
            for q in 0..old.num_states() {
                for sym in s.symbols() {
                    for &t in old.successors(q, sym) {
                        builder.add_transition(q, sym, t);
                    }
                }
            }
            builder.add_transition(old.initial(), a_sym, extra);
            builder.add_transition(extra, a_sym, extra);
            let new = builder.build(old.initial());

            let mut graph = InternedGraph::new();
            graph.quotient(&old);
            let report = graph.advance(&old, &new);
            let incremental = graph.node(&new).expect("advance interned the new version");
            assert_eq!(
                *incremental.quotient(),
                scratch_quotient(&new),
                "seed {seed}: incremental quotient differs from scratch"
            );
            assert_eq!(
                *incremental.rows(),
                *compute_node(&new).rows,
                "seed {seed}: incremental fixpoint rows differ from scratch"
            );
            assert_eq!(
                report.dirty_sccs + report.clean_sccs > 0,
                true,
                "seed {seed}: a seeded advance reports its SCC partition"
            );
        }
    }

    #[test]
    fn advance_without_interned_old_still_lands_on_scratch() {
        let old = pool_automaton(7);
        let new = pool_automaton(8);
        let mut graph = InternedGraph::new();
        let report = graph.advance(&old, &new);
        assert_eq!(report, AdvanceReport::default());
        assert_eq!(
            *graph.node(&new).expect("interned").quotient(),
            scratch_quotient(&new)
        );
    }

    #[test]
    fn sharded_cache_is_semantically_transparent() {
        let cache = QuotientCache::new();
        let b = pool_automaton(11);
        let first = cache.quotient(&b);
        let second = cache.quotient(&b);
        assert_eq!(first, second);
        assert_eq!(*first, scratch_quotient(&b));
        let stats = cache.stats();
        assert!(stats.hits + stats.misses >= 2);
        cache.reset();
        assert_eq!(cache.stats(), QuotientCacheStats::default());
    }

    #[test]
    fn broken_dirty_tracking_can_drift_from_scratch() {
        // The sabotage drill must be able to produce a divergence the
        // conform oracle can catch. The fixture flips a *clean-pair*
        // verdict via a downstream edit: `p -a-> t`, `r -a-> u`, with
        // `t` non-accepting and `u` accepting, so `r ≤ p` is false in
        // the old version (`u ≤ t` fails on acceptance) and true once
        // the edit makes `t` accepting. With propagation skipped, `p`
        // and `r` look clean, the stale false bit for `(r, p)` is
        // seeded, and the (removal-only) refinement can never restore
        // it. (Not every edit diverges under the drill — this is one
        // that does.)
        let s = sigma();
        let a_sym = s.symbol("a").unwrap();
        let b_sym = s.symbol("b").unwrap();
        let build = |accepting_t: bool| {
            let mut builder = BuchiBuilder::new(s.clone());
            let q0 = builder.add_state(false);
            let p = builder.add_state(false);
            let r = builder.add_state(false);
            let t = builder.add_state(accepting_t);
            let u = builder.add_state(true);
            builder.add_transition(q0, a_sym, p);
            builder.add_transition(q0, b_sym, r);
            builder.add_transition(p, a_sym, t);
            builder.add_transition(r, a_sym, u);
            builder.add_transition(t, a_sym, t);
            builder.add_transition(u, a_sym, u);
            builder.build(q0)
        };
        let old = build(false);
        let new = build(true);
        let mut graph = InternedGraph::new();
        graph.quotient(&old);
        sabotage::set_break_dirty_tracking(true);
        let drilled = {
            graph.advance(&old, &new);
            graph.node(&new).expect("interned").rows()
        };
        sabotage::set_break_dirty_tracking(false);
        assert_ne!(
            *drilled,
            *compute_node(&new).rows,
            "the drill must produce stale fixpoint rows on this fixture"
        );
    }
}
