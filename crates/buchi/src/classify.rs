//! Deciding safety and liveness of ω-regular languages.
//!
//! With the closure operator of [`crate::closure()`] in hand, the paper's
//! definitions become decision procedures:
//!
//! * `L(B)` is a **safety** property iff `L(cl B) = L(B)`, and since
//!   `L(B) ⊆ L(cl B)` always holds, iff `L(cl B) ⊆ L(B)`.
//! * `L(B)` is a **liveness** property iff `L(cl B) = Σ^ω`, decided by a
//!   cheap subset-construction universality check on the closure.
//!
//! Exactly the four-way classification of [`sl_lattice::Classification`]
//! falls out, instantiating the lattice-theoretic trichotomy on the
//! Boolean algebra of ω-regular languages — the case that neither the
//! topological characterization nor Gumm's σ-complete framework covers
//! (the lattice of ω-regular languages is not σ-complete).

use crate::automaton::Buchi;
use crate::closure::closure;
use crate::complement::ComplementBudgetExceeded;
use crate::incl::{included, universal};
pub use sl_lattice::Classification;

/// Whether `L(b)` is a safety property (`lcl L = L`).
///
/// # Errors
///
/// Propagates [`ComplementBudgetExceeded`] from the inclusion check.
pub fn is_safety(b: &Buchi) -> Result<bool, ComplementBudgetExceeded> {
    Ok(included(&closure(b), b)?.holds())
}

/// Whether `L(b)` is a liveness property (`lcl L = Σ^ω`).
///
/// # Errors
///
/// Propagates [`ComplementBudgetExceeded`] (the closure is
/// all-accepting, so in practice this uses the cheap subset complement
/// and cannot exceed reasonable budgets).
pub fn is_liveness(b: &Buchi) -> Result<bool, ComplementBudgetExceeded> {
    Ok(universal(&closure(b))?.is_ok())
}

/// Classifies `L(b)` into the paper's trichotomy (with "both" for
/// `Σ^ω`, the only property that is both safe and live).
///
/// # Errors
///
/// Propagates [`ComplementBudgetExceeded`].
pub fn classify(b: &Buchi) -> Result<Classification, ComplementBudgetExceeded> {
    let safe = is_safety(b)?;
    let live = is_liveness(b)?;
    Ok(match (safe, live) {
        (true, true) => Classification::Both,
        (true, false) => Classification::Safety,
        (false, true) => Classification::Liveness,
        (false, false) => Classification::Neither,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::BuchiBuilder;
    use sl_omega::Alphabet;

    fn sigma() -> Alphabet {
        Alphabet::ab()
    }

    fn inf_a(s: &Alphabet) -> Buchi {
        let a = s.symbol("a").unwrap();
        let b = s.symbol("b").unwrap();
        let mut builder = BuchiBuilder::new(s.clone());
        let q0 = builder.add_state(false);
        let qa = builder.add_state(true);
        builder.add_transition(q0, b, q0);
        builder.add_transition(q0, a, qa);
        builder.add_transition(qa, b, q0);
        builder.add_transition(qa, a, qa);
        builder.build(q0)
    }

    fn first_a(s: &Alphabet) -> Buchi {
        let a = s.symbol("a").unwrap();
        let b = s.symbol("b").unwrap();
        let mut builder = BuchiBuilder::new(s.clone());
        let q0 = builder.add_state(true);
        let q1 = builder.add_state(true);
        builder.add_transition(q0, a, q1);
        builder.add_transition(q1, a, q1);
        builder.add_transition(q1, b, q1);
        builder.build(q0)
    }

    /// a ∧ F ¬a — Rem's p3, neither safe nor live.
    fn p3(s: &Alphabet) -> Buchi {
        let a = s.symbol("a").unwrap();
        let b = s.symbol("b").unwrap();
        let mut builder = BuchiBuilder::new(s.clone());
        let q0 = builder.add_state(false);
        let wait = builder.add_state(false);
        let done = builder.add_state(true);
        builder.add_transition(q0, a, wait);
        builder.add_transition(wait, a, wait);
        builder.add_transition(wait, b, done);
        builder.add_transition(done, a, done);
        builder.add_transition(done, b, done);
        builder.build(q0)
    }

    #[test]
    fn gfa_is_liveness_not_safety() {
        let s = sigma();
        let m = inf_a(&s);
        assert!(!is_safety(&m).unwrap());
        assert!(is_liveness(&m).unwrap());
        assert_eq!(classify(&m).unwrap(), Classification::Liveness);
    }

    #[test]
    fn first_a_is_safety_not_liveness() {
        let s = sigma();
        let m = first_a(&s);
        assert!(is_safety(&m).unwrap());
        assert!(!is_liveness(&m).unwrap());
        assert_eq!(classify(&m).unwrap(), Classification::Safety);
    }

    #[test]
    fn p3_is_neither() {
        let s = sigma();
        assert_eq!(classify(&p3(&s)).unwrap(), Classification::Neither);
    }

    #[test]
    fn universal_is_both() {
        let s = sigma();
        assert_eq!(
            classify(&Buchi::universal(s)).unwrap(),
            Classification::Both
        );
    }

    #[test]
    fn empty_is_safety() {
        // ∅ is closed (lcl ∅ = ∅) and not dense.
        let s = sigma();
        assert_eq!(
            classify(&Buchi::empty_language(s)).unwrap(),
            Classification::Safety
        );
    }
}
