//! Antichain-based inclusion, universality, and equivalence — the
//! complement-free hot path.
//!
//! The rank-based pipeline in [`crate::incl`] decides `L(A) ⊆ L(B)` by
//! materializing the Kupferman–Vardi complement of `B` — exponential
//! even when the answer is an easy "no". This module decides the same
//! question *without ever constructing `¬B`*, by searching directly for
//! a counterexample lasso `u·v^ω ∈ L(A) \ L(B)`:
//!
//! * Every finite word `w` induces a **word-graph** `g_w` over `B`'s
//!   states: an arc `q → q'` iff `B` can go from `q` to `q'` reading
//!   `w`, flagged *accepting* iff some such path visits `F_B`
//!   (endpoints included). Word-graphs compose exactly
//!   (`g_{w1·w2} = g_{w1} ∘ g_{w2}`) and are backed by
//!   [`sl_lattice::Bitset`] rows, so composition and comparison are
//!   word-parallel `u64` operations.
//! * The search enumerates elements `(p, q, f, g_w)` — "`A` can go from
//!   `p` to `q` on `w` (visiting `F_A` iff `f`), and `w` acts on `B` as
//!   `g_w`" — closing the set under right-composition with single
//!   letters. A counterexample exists iff some *stem* element
//!   `(init_A, p, ·, g_u)` meets a *period* element `(p, p, 1, g_v)`
//!   such that the exact lasso test on `(g_u, g_v)` says `u·v^ω ∉ L(B)`.
//! * **Antichain subsumption** keeps only the most-promising elements:
//!   `x` subsumes `y` (same endpoints) iff `x.f ≥ y.f` and `x`'s graph
//!   has pointwise *fewer* arcs. `B`-acceptance of a lasso is monotone
//!   in the graphs' arcs and composition is monotone in both arguments,
//!   so dropping `y` never loses a counterexample: whenever `y`'s
//!   descendants reject, `x`'s reject too — and `x` carries its own
//!   genuinely `A`-realized witness word. This is the subsumption
//!   invariant; see DESIGN.md § "Inclusion engines".
//! * Both operands are first quotiented by direct simulation
//!   ([`crate::reduce::reduce`]), which preserves the language — so
//!   counterexamples found on the reduced automata are valid for the
//!   originals.
//!
//! The search is exact: [`included_antichain`] agrees with the
//! rank-based oracle on every instance (the differential suite in
//! `tests/inclusion_engines.rs` enforces this). The rank-based path is
//! still *required* when the caller needs the complement automaton
//! itself as an artifact (e.g. [`crate::decompose`]'s liveness part) —
//! this engine only answers queries.

use crate::automaton::{Buchi, StateId};
use crate::complement::ComplementBudgetExceeded;
use crate::graph::{tarjan, Graph};
use crate::incl::Inclusion;
use crate::interned::{shared_quotient_cache, QuotientCache};
use crate::reduce::reduce;
use sl_lattice::Bitset;
use sl_omega::{LassoWord, Symbol, Word};
use sl_support::{fault, Budget, SlError};
use std::borrow::Cow;
use std::collections::VecDeque;

/// Default cap on antichain insertion attempts for the unbudgeted
/// entry points, mirroring
/// [`crate::complement::DEFAULT_COMPLEMENT_BUDGET`].
pub const DEFAULT_ANTICHAIN_BUDGET: usize = 1 << 17;

/// Test-only engine sabotage, used by the conformance fuzzer to prove
/// the differential oracles catch a real engine bug. Not part of the
/// public API; never enabled outside dedicated drill tests.
#[doc(hidden)]
pub mod sabotage {
    use std::sync::atomic::{AtomicBool, Ordering};

    static BREAK_SUBSUMPTION: AtomicBool = AtomicBool::new(false);

    /// When enabled, the antichain subsumption check compares only the
    /// accepting bit and skips the word-graph domination test — so the
    /// search wrongly discards unsubsumed elements and can report
    /// "Holds" for non-inclusions. The rank engine is untouched, which
    /// is exactly the disagreement `slfuzz --sabotage
    /// antichain-subsumption` must detect and shrink.
    pub fn set_break_subsumption(on: bool) {
        BREAK_SUBSUMPTION.store(on, Ordering::Relaxed);
    }

    /// Whether the drill flag is currently set.
    #[must_use]
    pub fn subsumption_broken() -> bool {
        BREAK_SUBSUMPTION.load(Ordering::Relaxed)
    }
}

/// How many subsumption comparisons amortize one budget evaluation in
/// the budgeted entry points (see `BudgetMeter::tick_every`).
const SCAN_STRIDE: u64 = 64;

/// Monotone counters describing the antichain engine's work on the
/// current thread, snapshot via [`antichain_stats`] (or the combined
/// [`crate::incl::engine_stats`]). Counters accumulate per thread for
/// the life of the thread; callers interested in one query's cost take
/// a snapshot before and after and diff with
/// [`AntichainStats::delta_since`] — that is how the `sld` daemon
/// attributes work to requests even when queries run on pooled sweep
/// workers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AntichainStats {
    /// Fixpoint searches started (one per inclusion direction; a
    /// universality query is one search, an equivalence up to two).
    pub searches: u64,
    /// Antichain insertion attempts across all searches — the
    /// engine's primary work unit (what budgets meter).
    pub insert_attempts: u64,
    /// Pairwise subsumption comparisons — the hot inner loop.
    pub subsumption_scans: u64,
    /// Searches that ended with a counterexample lasso.
    pub counterexamples: u64,
    /// High-water mark, over this thread's searches, of macro-states
    /// committed past subsumption in one search — a gauge, not a
    /// counter: the memory-regression test in `tests/interned_core.rs`
    /// pins the on-the-fly engine's peak against the eager engine's
    /// final antichain through it.
    pub peak_macro_states: u64,
    /// Live antichain size when the most recent search returned (a
    /// gauge).
    pub final_antichain: u64,
}

impl AntichainStats {
    /// The counter increments since `earlier` (saturating, so a stale
    /// or cross-thread snapshot never underflows). The two gauges —
    /// `peak_macro_states`, `final_antichain` — are levels, not
    /// counters, and are carried over as-is.
    #[must_use]
    pub fn delta_since(&self, earlier: &AntichainStats) -> AntichainStats {
        AntichainStats {
            searches: self.searches.saturating_sub(earlier.searches),
            insert_attempts: self.insert_attempts.saturating_sub(earlier.insert_attempts),
            subsumption_scans: self.subsumption_scans.saturating_sub(earlier.subsumption_scans),
            counterexamples: self.counterexamples.saturating_sub(earlier.counterexamples),
            peak_macro_states: self.peak_macro_states,
            final_antichain: self.final_antichain,
        }
    }

    /// Accumulates another delta into this total; the gauges take the
    /// maximum (a high-water mark across threads is more informative
    /// than a meaningless sum of levels).
    pub fn absorb(&mut self, delta: &AntichainStats) {
        self.searches += delta.searches;
        self.insert_attempts += delta.insert_attempts;
        self.subsumption_scans += delta.subsumption_scans;
        self.counterexamples += delta.counterexamples;
        self.peak_macro_states = self.peak_macro_states.max(delta.peak_macro_states);
        self.final_antichain = self.final_antichain.max(delta.final_antichain);
    }
}

thread_local! {
    static STATS: std::cell::Cell<AntichainStats> =
        const { std::cell::Cell::new(AntichainStats {
            searches: 0,
            insert_attempts: 0,
            subsumption_scans: 0,
            counterexamples: 0,
            peak_macro_states: 0,
            final_antichain: 0,
        }) };
}

/// This thread's antichain counters since thread start.
#[must_use]
pub fn antichain_stats() -> AntichainStats {
    STATS.with(std::cell::Cell::get)
}

/// Space usage of one search, tallied as it runs: `peak` is the number
/// of macro-states ever committed past subsumption (monotone — the
/// arena high-water mark), `live` the elements currently in the
/// antichain (commits minus subsumption evictions).
#[derive(Debug, Clone, Copy, Default)]
struct SearchGauges {
    peak: u64,
    live: u64,
}

/// Folds one finished search into the thread counters. Called once per
/// search (not per step), so the hot loops stay counter-free: the
/// entry points tally attempts/scans in locals they already own for
/// budgeting and flush here.
fn record_search(attempts: u64, scans: u64, found_counterexample: bool, gauges: SearchGauges) {
    STATS.with(|cell| {
        let mut stats = cell.get();
        stats.searches += 1;
        stats.insert_attempts += attempts;
        stats.subsumption_scans += scans;
        stats.counterexamples += u64::from(found_counterexample);
        stats.peak_macro_states = stats.peak_macro_states.max(gauges.peak);
        stats.final_antichain = gauges.live;
        cell.set(stats);
    });
}

/// The word-graph of a finite word over `B`'s state set: `reach[q]` is
/// the set of states reachable from `q` reading the word, `acc[q]` the
/// subset reachable via a path that visits `F_B` (endpoints included).
/// `acc[q] ⊆ reach[q]` by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
struct WordGraph {
    reach: Vec<Bitset>,
    acc: Vec<Bitset>,
}

impl WordGraph {
    /// The graph of the empty word: identity arcs, accepting at
    /// accepting states.
    fn identity(b: &Buchi) -> WordGraph {
        let n = b.num_states();
        let mut reach = Vec::with_capacity(n);
        let mut acc = Vec::with_capacity(n);
        for q in 0..n {
            let mut row = Bitset::empty(n);
            row.insert(q);
            acc.push(if b.is_accepting(q) {
                row.clone()
            } else {
                Bitset::empty(n)
            });
            reach.push(row);
        }
        WordGraph { reach, acc }
    }

    /// The graph of a single letter.
    fn letter(b: &Buchi, sym: Symbol) -> WordGraph {
        let n = b.num_states();
        let mut reach = Vec::with_capacity(n);
        let mut acc = Vec::with_capacity(n);
        for q in 0..n {
            let succs = b.successors(q, sym);
            let row = Bitset::from_indices(n, succs);
            let acc_row = if b.is_accepting(q) {
                row.clone()
            } else {
                let flagged: Vec<StateId> = succs
                    .iter()
                    .copied()
                    .filter(|&s| b.is_accepting(s))
                    .collect();
                Bitset::from_indices(n, &flagged)
            };
            reach.push(row);
            acc.push(acc_row);
        }
        WordGraph { reach, acc }
    }

    /// Exact composition: `self` then `other`. A composite path visits
    /// `F_B` iff one of its halves does, which is exactly the union
    /// below — so word-graphs of concatenations are computed, not
    /// approximated.
    fn compose(&self, other: &WordGraph) -> WordGraph {
        let n = self.reach.len();
        let mut reach = Vec::with_capacity(n);
        let mut acc = Vec::with_capacity(n);
        for q in 0..n {
            let mut out_reach = Bitset::empty(n);
            let mut out_acc = Bitset::empty(n);
            for m in self.reach[q].iter() {
                out_reach.union_in_place(&other.reach[m]);
                out_acc.union_in_place(&other.acc[m]);
            }
            for m in self.acc[q].iter() {
                out_acc.union_in_place(&other.reach[m]);
            }
            reach.push(out_reach);
            acc.push(out_acc);
        }
        WordGraph { reach, acc }
    }

    /// Pointwise arc inclusion: `self` has at most the arcs of `other`.
    /// A smaller graph admits fewer `B`-runs, hence rejects at least as
    /// many lassos — the heart of the subsumption order.
    fn le(&self, other: &WordGraph) -> bool {
        self.reach
            .iter()
            .zip(&other.reach)
            .all(|(a, b)| a.is_subset(b))
            && self.acc.iter().zip(&other.acc).all(|(a, b)| a.is_subset(b))
    }
}

/// Exact lasso membership from word-graphs: whether `u·v^ω ∈ L(B)`,
/// where `g_u`, `g_v` are the word-graphs of `u` and `v` over `B`.
///
/// `B` accepts iff from some state in `g_u.reach[init_B]` a `g_v`-path
/// leads into a strongly connected component of the `g_v.reach` digraph
/// that contains an internal accepting arc — such a component yields a
/// `v`-segment cycle visiting `F_B`, traversed forever; conversely an
/// accepting run, sampled every `|v|` letters, eventually settles into
/// exactly such a component.
fn lasso_in_b(b: &Buchi, g_u: &WordGraph, g_v: &WordGraph) -> bool {
    let n = b.num_states();
    let graph = Graph {
        n,
        succ: Box::new(|q| Cow::Owned(g_v.reach[q].iter().collect())),
    };
    let scc = tarjan(&graph);
    let mut good = vec![false; scc.count];
    for x in 0..n {
        for y in g_v.acc[x].iter() {
            if scc.component[x] == scc.component[y] {
                good[scc.component[x]] = true;
            }
        }
    }
    // Forward reachability (zero or more g_v arcs) from the states B
    // can be in after reading u.
    let mut seen = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    for q in g_u.reach[b.initial()].iter() {
        seen[q] = true;
        stack.push(q);
    }
    while let Some(q) = stack.pop() {
        if good[scc.component[q]] {
            return true;
        }
        for s in g_v.reach[q].iter() {
            if !seen[s] {
                seen[s] = true;
                stack.push(s);
            }
        }
    }
    false
}

/// A search element: `A` goes `from → to` on `word` (some path visits
/// `F_A` iff `acc`), and `word` acts on `B` as `g`.
#[derive(Debug, Clone)]
struct Elem {
    id: u64,
    acc: bool,
    g: WordGraph,
    word: Vec<Symbol>,
}

/// Work units reported to the charge hook: one per insertion attempt
/// (the macro-step of the fixpoint loop) and one per subsumption
/// comparison (the hot inner loop, amortized in budgeted runs).
enum Step {
    Attempt,
    Scan,
}

type Charge<'c> = dyn FnMut(Step) -> Result<(), SlError> + 'c;

/// The fixpoint search. Returns a counterexample in
/// `L(a) \ L(b)` or proves inclusion. `gauges` is updated as elements
/// commit and evict, so it is meaningful even on an early (budget or
/// counterexample) exit.
fn search(
    a: &Buchi,
    b: &Buchi,
    charge: &mut Charge<'_>,
    gauges: &mut SearchGauges,
) -> Result<Inclusion, SlError> {
    assert_eq!(
        a.alphabet(),
        b.alphabet(),
        "inclusion requires a common alphabet"
    );
    // Simulation preprocessing: language-preserving, so verdicts and
    // counterexamples transfer to the original automata.
    let a = reduce(a);
    let b = reduce(b);
    let na = a.num_states();
    let sigma = a.alphabet().clone();
    let letters: Vec<WordGraph> = sigma.symbols().map(|s| WordGraph::letter(&b, s)).collect();
    let identity = WordGraph::identity(&b);
    let init = a.initial();

    // chains[from * na + to]: the antichain of elements at that pair.
    let mut chains: Vec<Vec<Elem>> = vec![Vec::new(); na * na];
    let mut work: VecDeque<(usize, u64)> = VecDeque::new();
    let mut next_id: u64 = 0;

    // Inserts a candidate element, maintaining the antichain, queuing
    // it for extension, and running the stem/period lasso tests it
    // enables. Returns a counterexample the moment one test rejects.
    let insert = |from: usize,
                      to: usize,
                      cand: Elem,
                      chains: &mut Vec<Vec<Elem>>,
                      work: &mut VecDeque<(usize, u64)>,
                      next_id: &mut u64,
                      gauges: &mut SearchGauges,
                      charge: &mut Charge<'_>|
     -> Result<Option<LassoWord>, SlError> {
        charge(Step::Attempt)?;
        let key = from * na + to;
        let broken = sabotage::subsumption_broken();
        for kept in &chains[key] {
            charge(Step::Scan)?;
            if kept.acc >= cand.acc && (broken || kept.g.le(&cand.g)) {
                return Ok(None); // subsumed: a better element is kept
            }
        }
        // The newcomer may subsume existing elements in turn.
        let mut i = 0;
        while i < chains[key].len() {
            charge(Step::Scan)?;
            if cand.acc >= chains[key][i].acc && cand.g.le(&chains[key][i].g) {
                chains[key].swap_remove(i);
                gauges.live -= 1;
            } else {
                i += 1;
            }
        }
        let mut elem = cand;
        elem.id = *next_id;
        *next_id += 1;
        work.push_back((key, elem.id));
        chains[key].push(elem);
        gauges.live += 1;
        gauges.peak += 1;
        let elem = chains[key].last().expect("just pushed");

        // Lasso tests enabled by this element. As a stem (from == init)
        // it pairs with every kept period at its target; as a period
        // (from == to, F_A visited) it pairs with the empty stem (when
        // anchored at init) and every kept stem reaching its anchor.
        if from == init {
            let p = to;
            // Periods live at (p, p); the element itself is included if
            // it qualifies (init-anchored accepting self-reach).
            for period in &chains[p * na + p] {
                if period.acc && !lasso_in_b(&b, &elem.g, &period.g) {
                    return Ok(Some(LassoWord::new(
                        &Word::new(&elem.word),
                        &Word::new(&period.word),
                    )));
                }
            }
        }
        if from == to && elem.acc {
            let p = from;
            if p == init && !lasso_in_b(&b, &identity, &elem.g) {
                return Ok(Some(LassoWord::new(
                    &Word::empty(),
                    &Word::new(&elem.word),
                )));
            }
            for stem in &chains[init * na + p] {
                // Skip self-pairing: handled above when the element was
                // inserted as a stem (same graphs, same verdict).
                if stem.id != elem.id && !lasso_in_b(&b, &stem.g, &elem.g) {
                    return Ok(Some(LassoWord::new(
                        &Word::new(&stem.word),
                        &Word::new(&elem.word),
                    )));
                }
            }
        }
        Ok(None)
    };

    // Seed with all single-letter elements of A.
    for p in 0..na {
        for sym in sigma.symbols() {
            for &r in a.successors(p, sym) {
                let cand = Elem {
                    id: 0,
                    acc: a.is_accepting(p) || a.is_accepting(r),
                    g: letters[sym.index()].clone(),
                    word: vec![sym],
                };
                if let Some(w) =
                    insert(p, r, cand, &mut chains, &mut work, &mut next_id, gauges, charge)?
                {
                    return Ok(Inclusion::CounterExample(w));
                }
            }
        }
    }

    // Close under right-composition with single letters. Elements
    // subsumed after queuing are skipped when popped; their subsumer is
    // queued and regenerates dominating extensions.
    while let Some((key, id)) = work.pop_front() {
        let Some(elem) = chains[key].iter().find(|e| e.id == id).cloned() else {
            continue;
        };
        let (from, to) = (key / na, key % na);
        for sym in sigma.symbols() {
            for &r in a.successors(to, sym) {
                let cand = Elem {
                    id: 0,
                    acc: elem.acc || a.is_accepting(r),
                    g: elem.g.compose(&letters[sym.index()]),
                    word: {
                        let mut w = elem.word.clone();
                        w.push(sym);
                        w
                    },
                };
                if let Some(w) =
                    insert(from, r, cand, &mut chains, &mut work, &mut next_id, gauges, charge)?
                {
                    return Ok(Inclusion::CounterExample(w));
                }
            }
        }
    }
    Ok(Inclusion::Holds)
}

/// Work items of the on-the-fly search: discover a product row (seed
/// the single-letter elements out of an `A`-state the search has
/// actually reached) or right-extend a committed arena element.
enum Task {
    Seed(usize),
    Extend(usize, u32),
}

/// The on-the-fly fixpoint search: same element semantics and verdicts
/// as [`search`], different materialization strategy.
///
/// * Operand quotients come from `cache` ([`QuotientCache`]) — trimmed
///   first, memoized across queries, incrementally maintained across
///   `redefine` — instead of a from-scratch [`reduce`] per call.
/// * Letter word-graphs of `B` are built on first use, not up front.
/// * `A`-states are seeded lazily from the initial state's successor
///   closure: a `(p, σ, r)` single-letter element exists only once the
///   search has discovered `p`, so a counterexample found early exits
///   before most of the space is touched.
/// * Elements live in an append-only arena; the chains hold indices,
///   and a candidate is composed in scratch and committed only after
///   surviving subsumption — `gauges.peak` (the arena length) is
///   exactly the number of macro-states ever materialized, which the
///   memory-regression test pins against the eager engine's final
///   antichain.
///
/// Verdicts agree with [`search`]: the closure of elements is the same
/// set (every state of a trimmed quotient is reachable, and eager
/// elements whose source is unreachable never participate in a lasso
/// verdict — stems are anchored at the initial state and periods only
/// pair with such stems), though the counterexample *words* may differ.
fn search_lazy(
    a: &Buchi,
    b: &Buchi,
    cache: &QuotientCache,
    charge: &mut Charge<'_>,
    gauges: &mut SearchGauges,
) -> Result<Inclusion, SlError> {
    assert_eq!(
        a.alphabet(),
        b.alphabet(),
        "inclusion requires a common alphabet"
    );
    let a = cache.quotient(a);
    let b = cache.quotient(b);
    let na = a.num_states();
    let sigma = a.alphabet().clone();
    let mut letters: Vec<Option<WordGraph>> = vec![None; sigma.len()];
    let identity = WordGraph::identity(&b);
    let init = a.initial();

    let mut arena: Vec<Elem> = Vec::new();
    let mut alive: Vec<bool> = Vec::new();
    let mut chains: Vec<Vec<u32>> = vec![Vec::new(); na * na];
    let mut work: VecDeque<Task> = VecDeque::new();
    let mut discovered = vec![false; na];
    discovered[init] = true;
    work.push_back(Task::Seed(init));

    // Commits a candidate that survives subsumption into the arena,
    // maintaining the index chains, queueing the extension, and running
    // the stem/period lasso tests it enables.
    let insert = |from: usize,
                  to: usize,
                  cand: Elem,
                  arena: &mut Vec<Elem>,
                  alive: &mut Vec<bool>,
                  chains: &mut Vec<Vec<u32>>,
                  work: &mut VecDeque<Task>,
                  gauges: &mut SearchGauges,
                  charge: &mut Charge<'_>|
     -> Result<Option<LassoWord>, SlError> {
        charge(Step::Attempt)?;
        let key = from * na + to;
        for &idx in &chains[key] {
            charge(Step::Scan)?;
            let kept = &arena[idx as usize];
            if kept.acc >= cand.acc && kept.g.le(&cand.g) {
                return Ok(None); // subsumed: never materialized
            }
        }
        let mut i = 0;
        while i < chains[key].len() {
            charge(Step::Scan)?;
            let old = chains[key][i] as usize;
            if cand.acc >= arena[old].acc && cand.g.le(&arena[old].g) {
                alive[old] = false;
                chains[key].swap_remove(i);
                gauges.live -= 1;
            } else {
                i += 1;
            }
        }
        let idx = u32::try_from(arena.len()).expect("arena outgrew u32 indices");
        let mut elem = cand;
        elem.id = u64::from(idx);
        arena.push(elem);
        alive.push(true);
        chains[key].push(idx);
        gauges.live += 1;
        gauges.peak += 1;
        work.push_back(Task::Extend(key, idx));
        let elem = &arena[idx as usize];

        if from == init {
            let p = to;
            for &pid in &chains[p * na + p] {
                let period = &arena[pid as usize];
                if period.acc && !lasso_in_b(&b, &elem.g, &period.g) {
                    return Ok(Some(LassoWord::new(
                        &Word::new(&elem.word),
                        &Word::new(&period.word),
                    )));
                }
            }
        }
        if from == to && elem.acc {
            let p = from;
            if p == init && !lasso_in_b(&b, &identity, &elem.g) {
                return Ok(Some(LassoWord::new(
                    &Word::empty(),
                    &Word::new(&elem.word),
                )));
            }
            for &sid in &chains[init * na + p] {
                let stem = &arena[sid as usize];
                if stem.id != elem.id && !lasso_in_b(&b, &stem.g, &elem.g) {
                    return Ok(Some(LassoWord::new(
                        &Word::new(&stem.word),
                        &Word::new(&elem.word),
                    )));
                }
            }
        }
        Ok(None)
    };

    while let Some(task) = work.pop_front() {
        match task {
            Task::Seed(p) => {
                for sym in sigma.symbols() {
                    let si = sym.index();
                    if letters[si].is_none() {
                        letters[si] = Some(WordGraph::letter(&b, sym));
                    }
                    for &r in a.successors(p, sym) {
                        let cand = Elem {
                            id: 0,
                            acc: a.is_accepting(p) || a.is_accepting(r),
                            g: letters[si].as_ref().expect("just built").clone(),
                            word: vec![sym],
                        };
                        if let Some(w) = insert(
                            p, r, cand, &mut arena, &mut alive, &mut chains, &mut work,
                            gauges, charge,
                        )? {
                            return Ok(Inclusion::CounterExample(w));
                        }
                        if !discovered[r] {
                            discovered[r] = true;
                            work.push_back(Task::Seed(r));
                        }
                    }
                }
            }
            Task::Extend(key, idx) => {
                if !alive[idx as usize] {
                    continue; // evicted after queueing; its subsumer regenerates
                }
                let elem = arena[idx as usize].clone();
                let (from, to) = (key / na, key % na);
                for sym in sigma.symbols() {
                    let si = sym.index();
                    if letters[si].is_none() {
                        letters[si] = Some(WordGraph::letter(&b, sym));
                    }
                    for &r in a.successors(to, sym) {
                        let cand = Elem {
                            id: 0,
                            acc: elem.acc || a.is_accepting(r),
                            g: elem.g.compose(letters[si].as_ref().expect("just built")),
                            word: {
                                let mut w = elem.word.clone();
                                w.push(sym);
                                w
                            },
                        };
                        if let Some(w) = insert(
                            from, r, cand, &mut arena, &mut alive, &mut chains, &mut work,
                            gauges, charge,
                        )? {
                            return Ok(Inclusion::CounterExample(w));
                        }
                    }
                }
            }
        }
    }
    Ok(Inclusion::Holds)
}

/// Decides `L(a) ⊆ L(b)` with the on-the-fly antichain engine against
/// an explicit [`QuotientCache`] — the `sld` daemon passes its private
/// instance here so cache counters stay a deterministic function of
/// the session.
///
/// # Errors
///
/// Returns [`ComplementBudgetExceeded`] (the shared blow-up error of
/// the inclusion API) if the search exceeds
/// [`DEFAULT_ANTICHAIN_BUDGET`] insertion attempts.
///
/// # Panics
///
/// Panics if the alphabets differ.
pub fn included_onthefly_with_cache(
    cache: &QuotientCache,
    a: &Buchi,
    b: &Buchi,
) -> Result<Inclusion, ComplementBudgetExceeded> {
    let mut attempts: u64 = 0;
    let mut scans: u64 = 0;
    let mut charge = |step: Step| -> Result<(), SlError> {
        match step {
            Step::Attempt => {
                attempts += 1;
                if attempts > DEFAULT_ANTICHAIN_BUDGET as u64 {
                    return Err(SlError::BudgetExceeded {
                        phase: "buchi.incl.antichain",
                        spent: attempts,
                    });
                }
            }
            Step::Scan => scans += 1,
        }
        Ok(())
    };
    let mut gauges = SearchGauges::default();
    let outcome = search_lazy(a, b, cache, &mut charge, &mut gauges);
    record_search(
        attempts,
        scans,
        matches!(outcome, Ok(Inclusion::CounterExample(_))),
        gauges,
    );
    outcome.map_err(|_| ComplementBudgetExceeded {
        budget: DEFAULT_ANTICHAIN_BUDGET,
    })
}

/// Decides `L(a) ⊆ L(b)` with the on-the-fly antichain engine (lazy
/// macro-state expansion over quotients from the process-wide
/// [`QuotientCache`]). The default engine of the dispatching deciders;
/// verdict-equivalent to [`included_antichain`] and
/// [`crate::incl::included_rank`] on every instance (the three-way
/// differential suite in `tests/inclusion_engines.rs` and the `incl3`
/// conform oracle enforce this), though counterexample words may
/// differ.
///
/// # Errors
///
/// As for [`included_onthefly_with_cache`].
///
/// # Panics
///
/// Panics if the alphabets differ.
pub fn included_onthefly(a: &Buchi, b: &Buchi) -> Result<Inclusion, ComplementBudgetExceeded> {
    included_onthefly_with_cache(shared_quotient_cache(), a, b)
}

/// Decides `L(a) ⊆ L(b)` with the on-the-fly engine under a cooperative
/// [`Budget`] against an explicit [`QuotientCache`]: the budget phase
/// and fault site are `"buchi.incl.antichain"`, identical to the eager
/// path — both engines are the same search, differently materialized,
/// so a budget that admits one admits the other.
///
/// # Errors
///
/// [`SlError::BudgetExceeded`] / [`SlError::Cancelled`] from the
/// budget, or [`SlError::FaultInjected`] when the fault plan fires.
///
/// # Panics
///
/// Panics if the alphabets differ.
pub fn included_onthefly_budgeted_with_cache(
    cache: &QuotientCache,
    a: &Buchi,
    b: &Buchi,
    budget: &Budget,
) -> Result<Inclusion, SlError> {
    let mut meter = budget.meter("buchi.incl.antichain");
    let plan = fault::global();
    let mut attempts: u64 = 0;
    let mut scans: u64 = 0;
    let mut charge = |step: Step| -> Result<(), SlError> {
        match step {
            Step::Attempt => {
                meter.tick()?;
                attempts += 1;
                plan.inject_error("buchi.incl.antichain", attempts)
            }
            Step::Scan => {
                scans += 1;
                meter.tick_every(SCAN_STRIDE)
            }
        }
    };
    let mut gauges = SearchGauges::default();
    let outcome = search_lazy(a, b, cache, &mut charge, &mut gauges);
    record_search(
        attempts,
        scans,
        matches!(outcome, Ok(Inclusion::CounterExample(_))),
        gauges,
    );
    outcome
}

/// [`included_onthefly_budgeted_with_cache`] against the process-wide
/// quotient cache.
///
/// # Errors
///
/// As for [`included_onthefly_budgeted_with_cache`].
pub fn included_onthefly_budgeted(
    a: &Buchi,
    b: &Buchi,
    budget: &Budget,
) -> Result<Inclusion, SlError> {
    included_onthefly_budgeted_with_cache(shared_quotient_cache(), a, b, budget)
}

/// Decides `L(b) = Σ^ω` with the on-the-fly engine, returning a
/// rejected word if not.
///
/// # Errors
///
/// As for [`included_onthefly`].
pub fn universal_onthefly(b: &Buchi) -> Result<Result<(), LassoWord>, ComplementBudgetExceeded> {
    universal_onthefly_with_cache(shared_quotient_cache(), b)
}

/// [`universal_onthefly`] against an explicit [`QuotientCache`].
///
/// # Errors
///
/// As for [`included_onthefly_with_cache`].
pub fn universal_onthefly_with_cache(
    cache: &QuotientCache,
    b: &Buchi,
) -> Result<Result<(), LassoWord>, ComplementBudgetExceeded> {
    let all = Buchi::universal(b.alphabet().clone());
    Ok(match included_onthefly_with_cache(cache, &all, b)? {
        Inclusion::Holds => Ok(()),
        Inclusion::CounterExample(w) => Err(w),
    })
}

/// Decides `L(a) = L(b)` with the on-the-fly engine, returning a
/// separating word if the languages differ; short-circuits on a
/// counterexample to the first inclusion like its siblings.
///
/// # Errors
///
/// As for [`included_onthefly`].
pub fn equivalent_onthefly(
    a: &Buchi,
    b: &Buchi,
) -> Result<Result<(), LassoWord>, ComplementBudgetExceeded> {
    equivalent_onthefly_with_cache(shared_quotient_cache(), a, b)
}

/// [`equivalent_onthefly`] against an explicit [`QuotientCache`].
///
/// # Errors
///
/// As for [`included_onthefly_with_cache`].
pub fn equivalent_onthefly_with_cache(
    cache: &QuotientCache,
    a: &Buchi,
    b: &Buchi,
) -> Result<Result<(), LassoWord>, ComplementBudgetExceeded> {
    if let Inclusion::CounterExample(w) = included_onthefly_with_cache(cache, a, b)? {
        return Ok(Err(w));
    }
    if let Inclusion::CounterExample(w) = included_onthefly_with_cache(cache, b, a)? {
        return Ok(Err(w));
    }
    Ok(Ok(()))
}

/// Decides `L(a) = L(b)` with the on-the-fly engine under a cooperative
/// [`Budget`] shared across both inclusion directions.
///
/// # Errors
///
/// As for [`included_onthefly_budgeted`].
pub fn equivalent_onthefly_budgeted(
    a: &Buchi,
    b: &Buchi,
    budget: &Budget,
) -> Result<Result<(), LassoWord>, SlError> {
    equivalent_onthefly_budgeted_with_cache(shared_quotient_cache(), a, b, budget)
}

/// [`equivalent_onthefly_budgeted`] against an explicit
/// [`QuotientCache`].
///
/// # Errors
///
/// As for [`included_onthefly_budgeted_with_cache`].
pub fn equivalent_onthefly_budgeted_with_cache(
    cache: &QuotientCache,
    a: &Buchi,
    b: &Buchi,
    budget: &Budget,
) -> Result<Result<(), LassoWord>, SlError> {
    if let Inclusion::CounterExample(w) =
        included_onthefly_budgeted_with_cache(cache, a, b, budget)?
    {
        return Ok(Err(w));
    }
    if let Inclusion::CounterExample(w) =
        included_onthefly_budgeted_with_cache(cache, b, a, budget)?
    {
        return Ok(Err(w));
    }
    Ok(Ok(()))
}

/// Decides `L(a) ⊆ L(b)` with the antichain engine — no complement is
/// ever constructed. Exact: agrees with [`crate::incl::included_rank`]
/// on every instance.
///
/// # Errors
///
/// Returns [`ComplementBudgetExceeded`] (the shared blow-up error of
/// the inclusion API) if the search exceeds
/// [`DEFAULT_ANTICHAIN_BUDGET`] insertion attempts.
///
/// # Panics
///
/// Panics if the alphabets differ.
pub fn included_antichain(a: &Buchi, b: &Buchi) -> Result<Inclusion, ComplementBudgetExceeded> {
    let mut attempts: u64 = 0;
    let mut scans: u64 = 0;
    let mut charge = |step: Step| -> Result<(), SlError> {
        match step {
            Step::Attempt => {
                attempts += 1;
                if attempts > DEFAULT_ANTICHAIN_BUDGET as u64 {
                    return Err(SlError::BudgetExceeded {
                        phase: "buchi.incl.antichain",
                        spent: attempts,
                    });
                }
            }
            Step::Scan => scans += 1,
        }
        Ok(())
    };
    let mut gauges = SearchGauges::default();
    let outcome = search(a, b, &mut charge, &mut gauges);
    record_search(
        attempts,
        scans,
        matches!(outcome, Ok(Inclusion::CounterExample(_))),
        gauges,
    );
    outcome.map_err(|_| ComplementBudgetExceeded {
        budget: DEFAULT_ANTICHAIN_BUDGET,
    })
}

/// Decides `L(a) ⊆ L(b)` with the antichain engine under a cooperative
/// [`Budget`]: every insertion attempt charges one step (phase
/// `"buchi.incl.antichain"`) and consults the process-wide fault plan
/// (site `"buchi.incl.antichain"`); subsumption comparisons — the hot
/// inner loop — charge through `BudgetMeter::tick_every`, amortizing
/// the limit evaluation.
///
/// # Errors
///
/// [`SlError::BudgetExceeded`] / [`SlError::Cancelled`] from the
/// budget, or [`SlError::FaultInjected`] when the fault plan fires.
///
/// # Panics
///
/// Panics if the alphabets differ.
pub fn included_antichain_budgeted(
    a: &Buchi,
    b: &Buchi,
    budget: &Budget,
) -> Result<Inclusion, SlError> {
    let mut meter = budget.meter("buchi.incl.antichain");
    let plan = fault::global();
    let mut attempts: u64 = 0;
    let mut scans: u64 = 0;
    let mut charge = |step: Step| -> Result<(), SlError> {
        match step {
            Step::Attempt => {
                meter.tick()?;
                attempts += 1;
                plan.inject_error("buchi.incl.antichain", attempts)
            }
            Step::Scan => {
                scans += 1;
                meter.tick_every(SCAN_STRIDE)
            }
        }
    };
    let mut gauges = SearchGauges::default();
    let outcome = search(a, b, &mut charge, &mut gauges);
    record_search(
        attempts,
        scans,
        matches!(outcome, Ok(Inclusion::CounterExample(_))),
        gauges,
    );
    outcome
}

/// Decides `L(b) = Σ^ω` with the antichain engine, returning a rejected
/// word if not.
///
/// # Errors
///
/// As for [`included_antichain`].
pub fn universal_antichain(b: &Buchi) -> Result<Result<(), LassoWord>, ComplementBudgetExceeded> {
    let all = Buchi::universal(b.alphabet().clone());
    Ok(match included_antichain(&all, b)? {
        Inclusion::Holds => Ok(()),
        Inclusion::CounterExample(w) => Err(w),
    })
}

/// Decides `L(a) = L(b)` with the antichain engine, returning a
/// separating word if the languages differ. Short-circuits on a
/// counterexample to the first inclusion, like its rank-based sibling.
///
/// # Errors
///
/// As for [`included_antichain`].
pub fn equivalent_antichain(
    a: &Buchi,
    b: &Buchi,
) -> Result<Result<(), LassoWord>, ComplementBudgetExceeded> {
    if let Inclusion::CounterExample(w) = included_antichain(a, b)? {
        return Ok(Err(w));
    }
    if let Inclusion::CounterExample(w) = included_antichain(b, a)? {
        return Ok(Err(w));
    }
    Ok(Ok(()))
}

/// Decides `L(a) = L(b)` with the antichain engine under a cooperative
/// [`Budget`] shared across both inclusion directions.
///
/// # Errors
///
/// As for [`included_antichain_budgeted`].
pub fn equivalent_antichain_budgeted(
    a: &Buchi,
    b: &Buchi,
    budget: &Budget,
) -> Result<Result<(), LassoWord>, SlError> {
    if let Inclusion::CounterExample(w) = included_antichain_budgeted(a, b, budget)? {
        return Ok(Err(w));
    }
    if let Inclusion::CounterExample(w) = included_antichain_budgeted(b, a, budget)? {
        return Ok(Err(w));
    }
    Ok(Ok(()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::BuchiBuilder;
    use crate::incl::{included_rank, universal_rank};
    use crate::random::{random_buchi, RandomConfig};
    use sl_omega::Alphabet;

    fn sigma() -> Alphabet {
        Alphabet::ab()
    }

    fn inf_a(s: &Alphabet) -> Buchi {
        let a = s.symbol("a").unwrap();
        let b = s.symbol("b").unwrap();
        let mut builder = BuchiBuilder::new(s.clone());
        let q0 = builder.add_state(false);
        let qa = builder.add_state(true);
        builder.add_transition(q0, b, q0);
        builder.add_transition(q0, a, qa);
        builder.add_transition(qa, b, q0);
        builder.add_transition(qa, a, qa);
        builder.build(q0)
    }

    fn only_a(s: &Alphabet) -> Buchi {
        let a = s.symbol("a").unwrap();
        let mut builder = BuchiBuilder::new(s.clone());
        let q0 = builder.add_state(true);
        builder.add_transition(q0, a, q0);
        builder.build(q0)
    }

    #[test]
    fn word_graphs_compose_exactly() {
        let s = sigma();
        let m = inf_a(&s);
        let a = s.symbol("a").unwrap();
        let b = s.symbol("b").unwrap();
        let ga = WordGraph::letter(&m, a);
        let gb = WordGraph::letter(&m, b);
        // (g_a ∘ g_b) ∘ g_a == g_a ∘ (g_b ∘ g_a): associativity on a
        // concrete instance.
        let left = ga.compose(&gb).compose(&ga);
        let right = ga.compose(&gb.compose(&ga));
        assert_eq!(left, right);
        // Identity is neutral.
        let id = WordGraph::identity(&m);
        assert_eq!(id.compose(&ga), ga);
        assert_eq!(ga.compose(&id), ga);
    }

    #[test]
    fn lasso_test_matches_membership() {
        let s = sigma();
        let m = inf_a(&s);
        let a = s.symbol("a").unwrap();
        let b = s.symbol("b").unwrap();
        let ga = WordGraph::letter(&m, a);
        let gb = WordGraph::letter(&m, b);
        // b (a b)^ω ∈ GF a; b b^ω ∉ GF a.
        let gab = ga.compose(&gb);
        assert!(lasso_in_b(&m, &gb, &gab));
        assert!(!lasso_in_b(&m, &gb, &gb));
        // ε stem: (a)^ω ∈, (b)^ω ∉.
        let id = WordGraph::identity(&m);
        assert!(lasso_in_b(&m, &id, &ga));
        assert!(!lasso_in_b(&m, &id, &gb));
    }

    #[test]
    fn inclusion_holds_for_subset() {
        let s = sigma();
        assert!(included_antichain(&only_a(&s), &inf_a(&s)).unwrap().holds());
    }

    #[test]
    fn counterexample_is_genuine() {
        let s = sigma();
        match included_antichain(&inf_a(&s), &only_a(&s)).unwrap() {
            Inclusion::CounterExample(w) => {
                assert!(inf_a(&s).accepts(&w), "accepted by the left operand");
                assert!(!only_a(&s).accepts(&w), "rejected by the right operand");
            }
            Inclusion::Holds => panic!("GF a ⊄ a^ω"),
        }
    }

    #[test]
    fn empty_language_is_included_in_everything() {
        let s = sigma();
        let empty = Buchi::empty_language(s.clone());
        assert!(included_antichain(&empty, &only_a(&s)).unwrap().holds());
        assert!(included_antichain(&empty, &empty).unwrap().holds());
    }

    #[test]
    fn nothing_nonempty_is_included_in_empty() {
        let s = sigma();
        let empty = Buchi::empty_language(s.clone());
        match included_antichain(&inf_a(&s), &empty).unwrap() {
            Inclusion::CounterExample(w) => assert!(inf_a(&s).accepts(&w)),
            Inclusion::Holds => panic!("GF a is nonempty"),
        }
    }

    #[test]
    fn universality_verdicts() {
        let s = sigma();
        assert!(universal_antichain(&Buchi::universal(s.clone()))
            .unwrap()
            .is_ok());
        let rejected = universal_antichain(&inf_a(&s)).unwrap().unwrap_err();
        assert!(!inf_a(&s).accepts(&rejected));
    }

    #[test]
    fn equivalence_and_separation() {
        let s = sigma();
        assert!(equivalent_antichain(&inf_a(&s), &inf_a(&s)).unwrap().is_ok());
        let w = equivalent_antichain(&inf_a(&s), &Buchi::universal(s.clone()))
            .unwrap()
            .unwrap_err();
        assert_ne!(
            inf_a(&s).accepts(&w),
            Buchi::universal(s.clone()).accepts(&w)
        );
    }

    #[test]
    fn budgeted_run_respects_step_limit() {
        let s = sigma();
        let err =
            included_antichain_budgeted(&inf_a(&s), &only_a(&s), &Budget::unlimited().with_steps(1))
                .unwrap_err();
        assert!(
            err.root().is_budget_exceeded() || err.root().is_fault_injected(),
            "{err}"
        );
    }

    #[test]
    fn budgeted_run_matches_unbudgeted() {
        let s = sigma();
        match included_antichain_budgeted(&only_a(&s), &inf_a(&s), &Budget::unlimited()) {
            Ok(inc) => assert_eq!(inc, included_antichain(&only_a(&s), &inf_a(&s)).unwrap()),
            Err(err) => assert!(err.root().is_fault_injected(), "{err}"),
        }
    }

    #[test]
    fn onthefly_agrees_with_eager_on_random_corpus() {
        let s = sigma();
        let config = RandomConfig {
            states: 5,
            density_percent: 55,
            accepting_percent: 35,
        };
        let cache = QuotientCache::new();
        for seed in 0..40u64 {
            let a = random_buchi(&s, seed, config);
            let b = random_buchi(&s, seed + 2000, config);
            let lazy = included_onthefly_with_cache(&cache, &a, &b).unwrap();
            let eager = included_antichain(&a, &b).unwrap();
            assert_eq!(
                lazy.holds(),
                eager.holds(),
                "seed {seed}: lazy and eager disagree on inclusion"
            );
            if let Inclusion::CounterExample(w) = &lazy {
                assert!(a.accepts(w), "seed {seed}: cex not accepted by a");
                assert!(!b.accepts(w), "seed {seed}: cex not rejected by b");
            }
            assert_eq!(
                universal_onthefly_with_cache(&cache, &a).unwrap().is_ok(),
                universal_antichain(&a).unwrap().is_ok(),
                "seed {seed}: universality differs"
            );
        }
        // Repeat queries went through the cache: far fewer quotient
        // computations than lookups.
        let stats = cache.stats();
        assert!(
            stats.hits > 0,
            "repeated operands should hit the quotient cache: {stats:?}"
        );
    }

    #[test]
    fn onthefly_budgeted_respects_step_limit_and_matches_unbudgeted() {
        let s = sigma();
        let err = included_onthefly_budgeted(
            &inf_a(&s),
            &only_a(&s),
            &Budget::unlimited().with_steps(1),
        )
        .unwrap_err();
        assert!(
            err.root().is_budget_exceeded() || err.root().is_fault_injected(),
            "{err}"
        );
        match included_onthefly_budgeted(&only_a(&s), &inf_a(&s), &Budget::unlimited()) {
            Ok(inc) => assert_eq!(inc, included_onthefly(&only_a(&s), &inf_a(&s)).unwrap()),
            Err(err) => assert!(err.root().is_fault_injected(), "{err}"),
        }
    }

    #[test]
    fn onthefly_equivalence_and_separation() {
        let s = sigma();
        let cache = QuotientCache::new();
        assert!(equivalent_onthefly_with_cache(&cache, &inf_a(&s), &inf_a(&s))
            .unwrap()
            .is_ok());
        let w = equivalent_onthefly_with_cache(&cache, &inf_a(&s), &Buchi::universal(s.clone()))
            .unwrap()
            .unwrap_err();
        assert_ne!(
            inf_a(&s).accepts(&w),
            Buchi::universal(s.clone()).accepts(&w)
        );
    }

    #[test]
    fn search_gauges_are_recorded() {
        let s = sigma();
        let before = antichain_stats();
        assert!(included_onthefly(&only_a(&s), &inf_a(&s)).unwrap().holds());
        let after = antichain_stats();
        assert!(
            after.peak_macro_states > 0,
            "a completed search commits at least one macro-state"
        );
        assert!(
            after.final_antichain > 0 && after.final_antichain <= after.peak_macro_states,
            "the live antichain is bounded by the commit high-water mark: {after:?}"
        );
        assert_eq!(after.searches, before.searches + 1);
    }

    #[test]
    fn agrees_with_rank_engine_on_random_corpus() {
        let s = sigma();
        let config = RandomConfig {
            states: 4,
            density_percent: 60,
            accepting_percent: 30,
        };
        for seed in 0..40u64 {
            let a = random_buchi(&s, seed, config);
            let b = random_buchi(&s, seed + 1000, config);
            let fast = included_antichain(&a, &b).unwrap();
            let slow = included_rank(&a, &b).unwrap();
            assert_eq!(
                fast.holds(),
                slow.holds(),
                "seed {seed}: engines disagree on inclusion"
            );
            if let Inclusion::CounterExample(w) = &fast {
                assert!(a.accepts(w), "seed {seed}: cex not accepted by a");
                assert!(!b.accepts(w), "seed {seed}: cex not rejected by b");
            }
            let fast_univ = universal_antichain(&a).unwrap().is_ok();
            let slow_univ = universal_rank(&a).unwrap().is_ok();
            assert_eq!(fast_univ, slow_univ, "seed {seed}: universality differs");
        }
    }
}
