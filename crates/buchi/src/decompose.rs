//! The Alpern–Schneider decomposition for Büchi automata, derived from
//! the paper's Theorem 2.
//!
//! With `cl` the closure operator on automata and complementation
//! available, every ω-regular language decomposes as
//!
//! ```text
//! L(B) = L(cl B) ∩ ( L(B) ∪ ¬L(cl B) )
//!        \_______/   \__________________/
//!          safety           liveness
//! ```
//!
//! exactly the instantiation of `a = cl.a /\ (a \/ b)` with
//! `b = ¬(cl.a)` in the Boolean algebra of ω-regular languages. Note
//! that only the *closure* automaton is complemented, and closure
//! automata are all-accepting, so the cheap subset-construction
//! complement suffices — no rank-based construction is needed to build
//! the decomposition.

use crate::automaton::Buchi;
use crate::classify::{is_liveness, is_safety};
use crate::closure::closure;
use crate::complement::{complement_safety, ComplementBudgetExceeded};
use crate::incl::equivalent;
use crate::ops::{intersection, union};
use sl_omega::{all_lassos, LassoWord};

/// The two components of the decomposition, plus the complement used.
#[derive(Debug, Clone)]
pub struct BuchiDecomposition {
    /// `B_S = cl(B)`: recognizes `lcl(L(B))`, a safety property.
    pub safety: Buchi,
    /// `B_L = B ∪ ¬cl(B)`: recognizes a liveness property.
    pub liveness: Buchi,
    /// `¬cl(B)`, the complement that went into the union.
    pub complement: Buchi,
}

/// Decomposes `B` into safety and liveness automata per Theorem 2.
#[must_use]
pub fn decompose(b: &Buchi) -> BuchiDecomposition {
    let safety = closure(b);
    let complement = complement_safety(&safety);
    let liveness = union(b, &complement);
    BuchiDecomposition {
        safety,
        liveness,
        complement,
    }
}

impl BuchiDecomposition {
    /// Checks the decomposition on every lasso word within the bounds:
    /// membership in `B` must equal membership in `B_S ∩ B_L`.
    /// Returns the first counterexample, if any.
    #[must_use]
    pub fn check_sampled(&self, b: &Buchi, max_stem: usize, max_cycle: usize) -> Option<LassoWord> {
        all_lassos(b.alphabet(), max_stem, max_cycle)
            .into_iter()
            .find(|w| b.accepts(w) != (self.safety.accepts(w) && self.liveness.accepts(w)))
    }

    /// Exactly verifies the three claims of the decomposition theorem:
    /// `L(B_S)` is safe, `L(B_L)` is live, and
    /// `L(B) = L(B_S) ∩ L(B_L)`.
    ///
    /// # Errors
    ///
    /// Propagates [`ComplementBudgetExceeded`] from the equivalence and
    /// safety checks on larger automata.
    pub fn verify_exact(&self, b: &Buchi) -> Result<bool, ComplementBudgetExceeded> {
        if !is_safety(&self.safety)? {
            return Ok(false);
        }
        if !is_liveness(&self.liveness)? {
            return Ok(false);
        }
        let both = intersection(&self.safety, &self.liveness);
        Ok(equivalent(b, &both)?.is_ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::BuchiBuilder;
    use sl_omega::Alphabet;

    fn sigma() -> Alphabet {
        Alphabet::ab()
    }

    fn inf_a(s: &Alphabet) -> Buchi {
        let a = s.symbol("a").unwrap();
        let b = s.symbol("b").unwrap();
        let mut builder = BuchiBuilder::new(s.clone());
        let q0 = builder.add_state(false);
        let qa = builder.add_state(true);
        builder.add_transition(q0, b, q0);
        builder.add_transition(q0, a, qa);
        builder.add_transition(qa, b, q0);
        builder.add_transition(qa, a, qa);
        builder.build(q0)
    }

    /// a ∧ F ¬a — Rem's p3, the canonical "neither" property.
    fn p3(s: &Alphabet) -> Buchi {
        let a = s.symbol("a").unwrap();
        let b = s.symbol("b").unwrap();
        let mut builder = BuchiBuilder::new(s.clone());
        let q0 = builder.add_state(false);
        let wait = builder.add_state(false);
        let done = builder.add_state(true);
        builder.add_transition(q0, a, wait);
        builder.add_transition(wait, a, wait);
        builder.add_transition(wait, b, done);
        builder.add_transition(done, a, done);
        builder.add_transition(done, b, done);
        builder.build(q0)
    }

    #[test]
    fn decomposition_of_p3_sampled_and_exact() {
        let s = sigma();
        let m = p3(&s);
        let d = decompose(&m);
        assert_eq!(d.check_sampled(&m, 3, 3), None);
        assert!(d.verify_exact(&m).unwrap());
    }

    #[test]
    fn decomposition_of_liveness_has_trivial_safety_part() {
        let s = sigma();
        let m = inf_a(&s);
        let d = decompose(&m);
        // cl(GF a) = Σ^ω: the safety part accepts everything.
        for w in all_lassos(&s, 2, 3) {
            assert!(d.safety.accepts(&w));
        }
        assert_eq!(d.check_sampled(&m, 3, 3), None);
        assert!(d.verify_exact(&m).unwrap());
    }

    #[test]
    fn decomposition_of_safety_has_trivial_liveness_part() {
        let s = sigma();
        let a = s.symbol("a").unwrap();
        let b = s.symbol("b").unwrap();
        let mut builder = BuchiBuilder::new(s.clone());
        let q0 = builder.add_state(true);
        let q1 = builder.add_state(true);
        builder.add_transition(q0, a, q1);
        builder.add_transition(q1, a, q1);
        builder.add_transition(q1, b, q1);
        let m = builder.build(q0);
        let d = decompose(&m);
        // L(B_L) = L(B) ∪ ¬L(B) = Σ^ω for a safety property.
        for w in all_lassos(&s, 2, 3) {
            assert!(d.liveness.accepts(&w), "{w}");
        }
        assert!(d.verify_exact(&m).unwrap());
    }

    #[test]
    fn decomposition_of_empty_language() {
        let s = sigma();
        let m = Buchi::empty_language(s.clone());
        let d = decompose(&m);
        // Safety part is ∅, liveness part is Σ^ω.
        assert_eq!(d.check_sampled(&m, 2, 2), None);
        assert!(d.verify_exact(&m).unwrap());
    }

    #[test]
    fn decomposition_of_universal_language() {
        let s = sigma();
        let m = Buchi::universal(s.clone());
        let d = decompose(&m);
        assert_eq!(d.check_sampled(&m, 2, 2), None);
        assert!(d.verify_exact(&m).unwrap());
    }

    #[test]
    fn machine_closure_of_the_decomposition() {
        // Theorem 6 instantiated: the safety part is exactly cl(B), the
        // strongest safety property containing L(B).
        let s = sigma();
        let m = p3(&s);
        let d = decompose(&m);
        let cl = closure(&m);
        assert!(equivalent(&d.safety, &cl).unwrap().is_ok());
    }
}
