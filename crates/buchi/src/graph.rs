//! Graph algorithms on automata: Tarjan SCC and reachability helpers.

use std::borrow::Cow;

/// A generic successor-function graph on nodes `0..n`.
///
/// The successor function returns `Cow<[usize]>` so graphs backed by a
/// [`crate::Buchi`]'s precomputed adjacency (`Buchi::all_successors`)
/// can serve borrowed slices with zero allocation, while synthesized
/// graphs (products, test fixtures) return owned rows.
pub(crate) struct Graph<'a> {
    pub n: usize,
    pub succ: Box<dyn Fn(usize) -> Cow<'a, [usize]> + 'a>,
}

/// The strongly connected components of a graph, in reverse topological
/// order (a component appears after every component it can reach).
/// `component[v]` is the id of the SCC containing `v`.
pub(crate) struct SccResult {
    pub component: Vec<usize>,
    pub count: usize,
}

impl SccResult {
    /// The members of each component.
    pub fn members(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.count];
        for (v, &c) in self.component.iter().enumerate() {
            out[c].push(v);
        }
        out
    }
}

/// Iterative Tarjan SCC (explicit stack; no recursion so big automata
/// don't overflow).
pub(crate) fn tarjan(graph: &Graph<'_>) -> SccResult {
    let n = graph.n;
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut component = vec![UNSET; n];
    let mut next_index = 0usize;
    let mut count = 0usize;

    // Work items: (node, successor list, position in list).
    enum Frame<'s> {
        Enter(usize),
        Resume(usize, Cow<'s, [usize]>, usize),
    }
    for root in 0..n {
        if index[root] != UNSET {
            continue;
        }
        let mut work = vec![Frame::Enter(root)];
        while let Some(frame) = work.pop() {
            match frame {
                Frame::Enter(v) => {
                    index[v] = next_index;
                    lowlink[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    work.push(Frame::Resume(v, (graph.succ)(v), 0));
                }
                Frame::Resume(v, succs, mut i) => {
                    let mut descended = false;
                    while i < succs.len() {
                        let w = succs[i];
                        i += 1;
                        if index[w] == UNSET {
                            work.push(Frame::Resume(v, succs, i));
                            work.push(Frame::Enter(w));
                            descended = true;
                            break;
                        } else if on_stack[w] {
                            lowlink[v] = lowlink[v].min(index[w]);
                        }
                    }
                    if descended {
                        continue;
                    }
                    // All successors done: close v.
                    if lowlink[v] == index[v] {
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            component[w] = count;
                            if w == v {
                                break;
                            }
                        }
                        count += 1;
                    }
                    // Propagate lowlink to parent (the frame below, if it
                    // is a Resume of the DFS parent).
                    if let Some(Frame::Resume(parent, _, _)) = work.last() {
                        let parent = *parent;
                        lowlink[parent] = lowlink[parent].min(lowlink[v]);
                    }
                }
            }
        }
    }
    SccResult { component, count }
}

/// Whether node `v` lies on a cycle (its SCC is nontrivial, or it has a
/// self loop).
pub(crate) fn on_cycle(graph: &Graph<'_>, scc: &SccResult, v: usize) -> bool {
    let members = scc.members();
    members[scc.component[v]].len() > 1 || (graph.succ)(v).contains(&v)
}

/// Backward reachability: all nodes that can reach some node in `targets`
/// (including the targets themselves). `pred[v]` lists the predecessors
/// of `v` — callers build the reverse adjacency once (a single pass over
/// the successor lists), so the walk is O(V + E).
pub(crate) fn backward_reachable(pred: &[Vec<usize>], targets: &[usize]) -> Vec<bool> {
    let mut seen = vec![false; pred.len()];
    let mut stack: Vec<usize> = Vec::new();
    for &t in targets {
        if !seen[t] {
            seen[t] = true;
            stack.push(t);
        }
    }
    while let Some(v) = stack.pop() {
        for &p in &pred[v] {
            if !seen[p] {
                seen[p] = true;
                stack.push(p);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_from_edges(n: usize, edges: &[(usize, usize)]) -> Graph<'_> {
        let mut adj = vec![Vec::new(); n];
        for &(u, v) in edges {
            adj[u].push(v);
        }
        Graph {
            n,
            succ: Box::new(move |v| Cow::Owned(adj[v].clone())),
        }
    }

    #[test]
    fn single_cycle_is_one_component() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let scc = tarjan(&g);
        assert_eq!(scc.count, 1);
        assert!(on_cycle(&g, &scc, 0));
    }

    #[test]
    fn dag_has_singleton_components() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let scc = tarjan(&g);
        assert_eq!(scc.count, 3);
        assert!(!on_cycle(&g, &scc, 0));
        assert!(!on_cycle(&g, &scc, 2));
    }

    #[test]
    fn reverse_topological_order() {
        // 0 -> 1 -> 2 with 2 a sink: component ids increase towards
        // sources.
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let scc = tarjan(&g);
        assert!(scc.component[2] < scc.component[1]);
        assert!(scc.component[1] < scc.component[0]);
    }

    #[test]
    fn self_loop_counts_as_cycle() {
        let g = graph_from_edges(2, &[(0, 0), (0, 1)]);
        let scc = tarjan(&g);
        assert!(on_cycle(&g, &scc, 0));
        assert!(!on_cycle(&g, &scc, 1));
    }

    #[test]
    fn two_components_plus_bridge() {
        let g = graph_from_edges(5, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 4), (4, 2)]);
        let scc = tarjan(&g);
        assert_eq!(scc.count, 2);
        assert_eq!(scc.component[0], scc.component[1]);
        assert_eq!(scc.component[2], scc.component[4]);
        assert_ne!(scc.component[0], scc.component[2]);
    }

    #[test]
    fn backward_reachability() {
        // Reverse adjacency of 0 -> 1 -> 2, 3 -> 3.
        let mut pred = vec![Vec::new(); 4];
        for (s, t) in [(0usize, 1usize), (1, 2), (3, 3)] {
            pred[t].push(s);
        }
        let seen = backward_reachable(&pred, &[2]);
        assert_eq!(seen, vec![true, true, true, false]);
    }

    #[test]
    fn large_path_does_not_overflow_stack() {
        let n = 200_000;
        let g = Graph {
            n,
            succ: Box::new(move |v| Cow::Owned(if v + 1 < n { vec![v + 1] } else { vec![] })),
        };
        let scc = tarjan(&g);
        assert_eq!(scc.count, n);
    }
}
