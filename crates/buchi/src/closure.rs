//! The closure operator on Büchi automata (paper, Section 2.4).
//!
//! The paper describes the operator as: "first removes states that cannot
//! reach an accepting state and then makes every remaining state an
//! accepting state. ... applying this operator to B results in an
//! automaton whose language is the lcl of the language of B."
//!
//! For the language identity to hold on *untrimmed* automata, "cannot
//! reach an accepting state" must be read as "has an empty language from
//! here": a state that reaches an accepting state from which no accepting
//! *cycle* is reachable contributes nothing to `L(B)` and must also be
//! pruned (otherwise the all-accepting step would invent limit words that
//! no member of `L(B)` approximates). [`closure`] therefore keeps exactly
//! the states `q` with `L(B(q)) ≠ ∅` — which coincides with the paper's
//! description on automata whose accepting states all lie on accepting
//! lassos.

use crate::automaton::Buchi;
use crate::graph::{backward_reachable, tarjan, Graph};

/// The set of *live* states: those from which some accepting cycle is
/// reachable, i.e. `L(B(q)) ≠ ∅`.
#[must_use]
pub fn live_states(b: &Buchi) -> Vec<bool> {
    let graph = Graph {
        n: b.num_states(),
        succ: Box::new(|q| std::borrow::Cow::Borrowed(b.all_successors(q))),
    };
    let scc = tarjan(&graph);
    let members = scc.members();
    let size: Vec<usize> = members.iter().map(Vec::len).collect();
    // Accepting states on cycles are the cores of accepting lassos.
    let cores: Vec<usize> = (0..b.num_states())
        .filter(|&q| {
            b.is_accepting(q) && (size[scc.component[q]] > 1 || b.all_successors(q).contains(&q))
        })
        .collect();
    // Reverse adjacency in one pass over the successor lists: the old
    // dense bit-probe scan paid O(n) per queried vertex, turning every
    // `Monitor::new`/`classify` into an O(n²) walk.
    let mut pred: Vec<Vec<usize>> = vec![Vec::new(); b.num_states()];
    for p in 0..b.num_states() {
        for &q in b.all_successors(p) {
            pred[q].push(p);
        }
    }
    backward_reachable(&pred, &cores)
}

/// The closure automaton: restrict to live states, then make every state
/// accepting. Its language is `lcl(L(B))`, the Alpern–Schneider closure
/// of `L(B)` — a safety property.
#[must_use]
pub fn closure(b: &Buchi) -> Buchi {
    b.restrict(&live_states(b)).with_all_accepting()
}

/// Whether the automaton is *closure-shaped*: every state accepting and
/// every state live. Closure automata recognize exactly the ω-regular
/// safety properties (Schneider's security automata have this shape).
#[must_use]
pub fn is_closure_shaped(b: &Buchi) -> bool {
    let live = live_states(b);
    (0..b.num_states()).all(|q| b.is_accepting(q)) && live.iter().all(|&l| l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::BuchiBuilder;
    use sl_omega::{all_lassos, Alphabet, LassoWord, Word};

    /// `lcl` membership oracle for a lasso word wrt an ω-regular
    /// property given by an automaton: `t ∈ lcl(L)` iff every finite
    /// prefix of `t` extends to a word in `L`. For a lasso word it
    /// suffices to check prefixes up to `phase_count * num_states + 1`
    /// (after that, (phase, possible-state-set) pairs repeat).
    fn lcl_contains(b: &Buchi, t: &LassoWord) -> bool {
        let bound = t.phase_count() * (1 << b.num_states().min(16)) + 2;
        for n in 0..bound {
            let prefix = t.prefix(n);
            if !prefix_extendable(b, &prefix) {
                return false;
            }
        }
        true
    }

    /// Whether some word with this prefix is accepted.
    fn prefix_extendable(b: &Buchi, prefix: &Word) -> bool {
        // Set of states reachable on the prefix.
        let mut current: Vec<usize> = vec![b.initial()];
        for i in 0..prefix.len() {
            let sym = prefix.at(i).unwrap();
            let mut next: Vec<usize> = current
                .iter()
                .flat_map(|&q| b.successors(q, sym).iter().copied())
                .collect();
            next.sort_unstable();
            next.dedup();
            current = next;
            if current.is_empty() {
                return false;
            }
        }
        // Some reached state must have a nonempty language.
        let live = live_states(b);
        current.iter().any(|&q| live[q])
    }

    fn gfa() -> (Alphabet, Buchi) {
        let sigma = Alphabet::ab();
        let a = sigma.symbol("a").unwrap();
        let b = sigma.symbol("b").unwrap();
        let mut builder = BuchiBuilder::new(sigma.clone());
        let q0 = builder.add_state(false);
        let qa = builder.add_state(true);
        builder.add_transition(q0, b, q0);
        builder.add_transition(q0, a, qa);
        builder.add_transition(qa, b, q0);
        builder.add_transition(qa, a, qa);
        (sigma, builder.build(q0))
    }

    #[test]
    fn closure_of_gfa_is_universal() {
        // lcl(GF a) = Σ^ω: every prefix extends with a^ω.
        let (sigma, m) = gfa();
        let c = closure(&m);
        for w in all_lassos(&sigma, 2, 2) {
            assert!(c.accepts(&w), "{w}");
        }
    }

    #[test]
    fn closure_matches_lcl_oracle_on_gfa() {
        let (sigma, m) = gfa();
        let c = closure(&m);
        for w in all_lassos(&sigma, 2, 3) {
            assert_eq!(c.accepts(&w), lcl_contains(&m, &w), "{w}");
        }
    }

    #[test]
    fn closure_prunes_dead_accepting_states() {
        // q0 --a--> qf(accepting, no cycle): L(B) = ∅, so the closure
        // must also be empty — the naive "reach an accepting state"
        // reading would wrongly accept a-prefixed limits.
        let sigma = Alphabet::ab();
        let a = sigma.symbol("a").unwrap();
        let mut builder = BuchiBuilder::new(sigma.clone());
        let q0 = builder.add_state(false);
        let qf = builder.add_state(true);
        builder.add_transition(q0, a, qf);
        let m = builder.build(q0);
        let c = closure(&m);
        for w in all_lassos(&sigma, 2, 2) {
            assert!(!c.accepts(&w), "{w}");
        }
    }

    #[test]
    fn closure_prunes_traps_with_unreachable_acceptance() {
        // q0 loops on a (non-accepting); q0 --b--> qf(accepting, no
        // outgoing). L(B) = ∅; lcl must be empty, in particular a^ω must
        // be rejected.
        let sigma = Alphabet::ab();
        let a = sigma.symbol("a").unwrap();
        let bsym = sigma.symbol("b").unwrap();
        let mut builder = BuchiBuilder::new(sigma.clone());
        let q0 = builder.add_state(false);
        let qf = builder.add_state(true);
        builder.add_transition(q0, a, q0);
        builder.add_transition(q0, bsym, qf);
        let m = builder.build(q0);
        let c = closure(&m);
        assert!(!c.accepts(&LassoWord::parse(&sigma, "", "a")));
    }

    #[test]
    fn closure_is_extensive_and_idempotent_on_samples() {
        let (sigma, m) = gfa();
        let c = closure(&m);
        let cc = closure(&c);
        for w in all_lassos(&sigma, 2, 3) {
            // Extensive: L(B) ⊆ L(cl B).
            if m.accepts(&w) {
                assert!(c.accepts(&w), "extensivity on {w}");
            }
            // Idempotent: L(cl cl B) = L(cl B).
            assert_eq!(c.accepts(&w), cc.accepts(&w), "idempotency on {w}");
        }
    }

    #[test]
    fn closure_of_safety_automaton_is_same_language() {
        // "First symbol is a" is a safety property.
        let sigma = Alphabet::ab();
        let a = sigma.symbol("a").unwrap();
        let bsym = sigma.symbol("b").unwrap();
        let mut builder = BuchiBuilder::new(sigma.clone());
        let q0 = builder.add_state(true);
        let q1 = builder.add_state(true);
        builder.add_transition(q0, a, q1);
        builder.add_transition(q1, a, q1);
        builder.add_transition(q1, bsym, q1);
        let m = builder.build(q0);
        let c = closure(&m);
        for w in all_lassos(&sigma, 2, 3) {
            assert_eq!(m.accepts(&w), c.accepts(&w), "{w}");
        }
        assert!(is_closure_shaped(&c));
    }

    #[test]
    fn live_states_identifies_dead_branches() {
        let sigma = Alphabet::ab();
        let a = sigma.symbol("a").unwrap();
        let mut builder = BuchiBuilder::new(sigma.clone());
        let q0 = builder.add_state(false);
        let live = builder.add_state(true);
        let dead = builder.add_state(false);
        builder.add_transition(q0, a, live);
        builder.add_transition(live, a, live);
        builder.add_transition(q0, a, dead);
        let m = builder.build(q0);
        assert_eq!(live_states(&m), vec![true, true, false]);
    }

    #[test]
    fn closure_shape_detection() {
        let sigma = Alphabet::ab();
        assert!(is_closure_shaped(&Buchi::universal(sigma.clone())));
        let (_, m) = gfa();
        assert!(!is_closure_shaped(&m));
    }
}
