//! Compiled safety monitors: the [`Monitor`]'s safety-closure DFA
//! determinized, Hopcroft-minimized, and flattened into a dense
//! row-major `u16` transition table.
//!
//! The [`Monitor`] steps through `Vec<Vec<usize>>` rows with a branch
//! per sentinel; good enough for one trace, too slow for a fleet. A
//! [`CompiledMonitor`] lowers the same machine into a flat table with
//! two *physical* sentinel rows — a dead row and an unknown row, each
//! self-looping — so stepping an in-alphabet symbol is one unconditional
//! load: `next = cells[state * stride + symbol]`. Out-of-alphabet
//! symbols (untrusted traces) take the one remaining branch: a dead
//! monitor stays dead (violations are irremediable and beat Unknown),
//! anything else moves to the sticky unknown row.
//!
//! On top sits [`MonitorFleet`], a structure-of-arrays batch stepper:
//! one shared table, one `u16` of current state per session, stepped in
//! a single cache-friendly loop. `sld`'s `monitor-step` rides this for
//! every safety-classified target (E13 measures the headroom; the
//! `compiled` conformance oracle holds it verdict-for-verdict to the
//! subset-construction [`Monitor`] and an independent NFA-set stepper).
//!
//! Semantics are *identical* to [`Monitor`] by construction: the table
//! is built from the monitor's own subset construction, minimization
//! only merges states with equal residual verdict languages, and
//! [`CompiledMonitor::agrees_with`] checks the equivalence exhaustively
//! (a BFS over the product of two tables).

use crate::automaton::Buchi;
use crate::monitor::{Monitor, Verdict, DEAD};
use sl_omega::{Symbol, Word};
use sl_support::{Budget, BudgetMeter, SlError};
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

/// Why a policy could not be compiled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompileError {
    /// The (minimized) monitor DFA has more states than a dense `u16`
    /// table can address once the two sentinel rows are reserved.
    TooManyStates(usize),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::TooManyStates(n) => write!(
                f,
                "monitor has {n} states; a compiled table addresses at most {}",
                usize::from(u16::MAX) - 1
            ),
        }
    }
}

impl std::error::Error for CompileError {}

/// The shared dense table: `cells[state * stride + symbol]` is the
/// successor, with two self-looping sentinel rows appended after the
/// `num_states` real rows (`dead`, then `unknown`).
#[derive(Debug, PartialEq, Eq)]
struct DenseTable {
    /// Row width = alphabet size.
    stride: usize,
    /// Real (alive) states; the sentinel rows sit at `num_states` and
    /// `num_states + 1`.
    num_states: usize,
    /// Start state (the dead sentinel when the closure is empty).
    initial: u16,
    /// The dead row index: every in-alphabet step self-loops.
    dead: u16,
    /// The sticky unknown row index: likewise self-looping.
    unknown: u16,
    /// Row-major transitions, `(num_states + 2) * stride` entries.
    cells: Vec<u16>,
}

impl DenseTable {
    /// One transition. In-alphabet symbols are a single table load —
    /// the sentinel rows make dead/unknown handling branch-free.
    /// Out-of-alphabet symbols move everything but the dead row to the
    /// unknown row (violations beat Unknown, matching [`Monitor`]).
    #[inline]
    fn next(&self, current: u16, sym: Symbol) -> u16 {
        let s = sym.index();
        if s < self.stride {
            self.cells[current as usize * self.stride + s]
        } else if current == self.dead {
            self.dead
        } else {
            self.unknown
        }
    }

    #[inline]
    fn verdict_of(&self, current: u16) -> Verdict {
        if current == self.dead {
            Verdict::Violation
        } else if current == self.unknown {
            Verdict::Unknown
        } else {
            Verdict::Ok
        }
    }
}

/// A compiled deterministic safety monitor: drop-in verdict-equivalent
/// to [`Monitor`], backed by the flat [`DenseTable`].
///
/// Cloning is cheap (the table is shared behind an [`Arc`]); clones
/// step independently.
#[derive(Debug, Clone)]
pub struct CompiledMonitor {
    table: Arc<DenseTable>,
    current: u16,
}

impl CompiledMonitor {
    /// Compiles the monitor for `lcl(L(b))`: subset construction over
    /// the safety closure (exactly [`Monitor::new`]), completed with a
    /// dead sink, Hopcroft-minimized, and flattened.
    ///
    /// # Errors
    ///
    /// [`CompileError::TooManyStates`] when the minimized DFA does not
    /// fit a `u16` table.
    pub fn new(b: &Buchi) -> Result<Self, CompileError> {
        Self::build(b, true)
    }

    /// [`CompiledMonitor::new`] without the minimization pass — the
    /// raw subset-construction DFA, flattened as-is. Exists so the
    /// minimization step itself can be checked for language
    /// equivalence ([`CompiledMonitor::agrees_with`]).
    ///
    /// # Errors
    ///
    /// [`CompileError::TooManyStates`] when the DFA does not fit.
    pub fn without_minimization(b: &Buchi) -> Result<Self, CompileError> {
        Self::build(b, false)
    }

    fn build(b: &Buchi, minimize: bool) -> Result<Self, CompileError> {
        let stride = b.alphabet().len();
        let monitor = Monitor::new(b);
        let n = monitor.table.len();
        // Complete the DFA with an explicit dead sink at index n, so
        // minimization and the BFS renumbering see a total function.
        let total = n + 1;
        let dead_idx = n;
        let mut delta = vec![dead_idx; total * stride];
        for (s, row) in monitor.table.iter().enumerate() {
            for (c, &t) in row.iter().enumerate() {
                delta[s * stride + c] = if t == DEAD { dead_idx } else { t };
            }
        }
        let accepting: Vec<bool> = (0..total).map(|s| s != dead_idx).collect();
        let class_of: Vec<usize> = if minimize {
            hopcroft(total, stride, &delta, &accepting)
        } else {
            (0..total).collect()
        };
        let num_classes = class_of.iter().max().map_or(0, |&c| c + 1);
        // Any member serves as a class representative: minimization
        // merges states only when their rows land in the same classes.
        let mut rep = vec![usize::MAX; num_classes];
        for s in 0..total {
            if rep[class_of[s]] == usize::MAX {
                rep[class_of[s]] = s;
            }
        }
        let dead_class = class_of[dead_idx];
        let init_class = class_of[if monitor.initial == DEAD { dead_idx } else { monitor.initial }];
        // BFS renumbering from the initial class gives a canonical
        // layout and drops anything unreachable; the dead class maps to
        // the sentinel row instead of a table row.
        let mut rank = vec![usize::MAX; num_classes];
        let mut order: Vec<usize> = Vec::new();
        if init_class != dead_class {
            rank[init_class] = 0;
            order.push(init_class);
            let mut head = 0;
            while head < order.len() {
                let s = rep[order[head]];
                head += 1;
                for c in 0..stride {
                    let t = class_of[delta[s * stride + c]];
                    if t != dead_class && rank[t] == usize::MAX {
                        rank[t] = order.len();
                        order.push(t);
                    }
                }
            }
        }
        let live = order.len();
        if live > usize::from(u16::MAX) - 1 {
            return Err(CompileError::TooManyStates(live));
        }
        let dead = live as u16;
        let unknown = live as u16 + 1;
        let mut cells = vec![0u16; (live + 2) * stride];
        for (i, &class) in order.iter().enumerate() {
            let s = rep[class];
            for c in 0..stride {
                let t = class_of[delta[s * stride + c]];
                cells[i * stride + c] = if t == dead_class { dead } else { rank[t] as u16 };
            }
        }
        for c in 0..stride {
            cells[live as usize * stride + c] = dead;
            cells[(live + 1) * stride + c] = unknown;
        }
        let initial = if init_class == dead_class { dead } else { 0 };
        Ok(CompiledMonitor {
            table: Arc::new(DenseTable {
                stride,
                num_states: live,
                initial,
                dead,
                unknown,
                cells,
            }),
            current: initial,
        })
    }

    /// Number of real table states (excluding the two sentinel rows).
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.table.num_states
    }

    /// Resets to the initial state.
    pub fn reset(&mut self) {
        self.current = self.table.initial;
    }

    /// The current verdict.
    #[must_use]
    pub fn verdict(&self) -> Verdict {
        self.table.verdict_of(self.current)
    }

    /// Feeds one symbol; returns the verdict after the step. Identical
    /// semantics to [`Monitor::step`]: violations are irremediable,
    /// out-of-alphabet symbols are sticky [`Verdict::Unknown`] (unless
    /// already dead), and nothing panics on untrusted input.
    pub fn step(&mut self, sym: Symbol) -> Verdict {
        self.current = self.table.next(self.current, sym);
        self.table.verdict_of(self.current)
    }

    /// [`CompiledMonitor::step`] under a budget meter, charging one
    /// step first; the state is unchanged when the charge fails.
    ///
    /// # Errors
    ///
    /// Propagates [`SlError::BudgetExceeded`] / [`SlError::Cancelled`]
    /// from the meter.
    pub fn step_checked(&mut self, sym: Symbol, meter: &mut BudgetMeter) -> Result<Verdict, SlError> {
        meter.charge(1)?;
        Ok(self.step(sym))
    }

    /// Runs a whole finite trace from the initial state, returning the
    /// final verdict and the settle position — mirrors [`Monitor::run`]
    /// exactly.
    ///
    /// The loop hoists the table's hot scalars into locals so each
    /// in-alphabet symbol costs one table load plus two predictable
    /// compares (the sentinel rows are the two largest indices, so
    /// "settled?" is a single `>=`). This is the single-trace fast
    /// path; [`MonitorFleet::step_all`] is the many-session one.
    pub fn run(&mut self, trace: &Word) -> (Verdict, usize) {
        let table = &*self.table;
        let (stride, dead, unknown) = (table.stride, table.dead, table.unknown);
        let cells = table.cells.as_slice();
        let mut cur = table.initial;
        for (i, &sym) in trace.as_slice().iter().enumerate() {
            let s = sym.index();
            cur = if s < stride {
                cells[cur as usize * stride + s]
            } else if cur == dead {
                dead
            } else {
                unknown
            };
            if cur >= dead {
                self.current = cur;
                let settled = if cur == dead {
                    Verdict::Violation
                } else {
                    Verdict::Unknown
                };
                return (settled, i + 1);
            }
        }
        self.current = cur;
        (Verdict::Ok, trace.len())
    }

    /// [`CompiledMonitor::run`] with a per-trace step budget — mirrors
    /// [`Monitor::run_with_budget`].
    ///
    /// # Errors
    ///
    /// [`SlError::BudgetExceeded`] / [`SlError::Cancelled`] when the
    /// budget runs out mid-trace.
    pub fn run_with_budget(
        &mut self,
        trace: &Word,
        budget: &Budget,
    ) -> Result<(Verdict, usize), SlError> {
        self.reset();
        let mut meter = budget.meter("buchi.monitor");
        for (i, &sym) in trace.as_slice().iter().enumerate() {
            match self.step_checked(sym, &mut meter)? {
                Verdict::Ok => {}
                settled => return Ok((settled, i + 1)),
            }
        }
        Ok((Verdict::Ok, trace.len()))
    }

    /// Exhaustive verdict-language equivalence with another compiled
    /// table: BFS over the product of the two tables, demanding equal
    /// verdicts at every reachable state pair. This is exact (both
    /// machines are finite and complete), so it certifies that
    /// minimization changed nothing observable.
    #[must_use]
    pub fn agrees_with(&self, other: &CompiledMonitor) -> bool {
        let (a, b) = (&self.table, &other.table);
        if a.stride != b.stride {
            return false;
        }
        let start = (a.initial, b.initial);
        let mut seen: HashSet<(u16, u16)> = HashSet::new();
        seen.insert(start);
        let mut stack = vec![start];
        while let Some((x, y)) = stack.pop() {
            if a.verdict_of(x) != b.verdict_of(y) {
                return false;
            }
            for c in 0..a.stride {
                let pair = (
                    a.cells[x as usize * a.stride + c],
                    b.cells[y as usize * b.stride + c],
                );
                if seen.insert(pair) {
                    stack.push(pair);
                }
            }
        }
        true
    }
}

/// Hopcroft partition refinement on a complete DFA given as a dense
/// row-major table. Returns `class_of[state]`; states share a class iff
/// they are indistinguishable by any symbol sequence under the
/// `accepting` predicate. Deterministic: the worklist is a stack and
/// split candidates are processed in sorted class order.
fn hopcroft(n: usize, stride: usize, delta: &[usize], accepting: &[bool]) -> Vec<usize> {
    // Inverse transitions per symbol.
    let mut inv: Vec<Vec<Vec<usize>>> = vec![vec![Vec::new(); n]; stride];
    for q in 0..n {
        for c in 0..stride {
            inv[c][delta[q * stride + c]].push(q);
        }
    }
    let mut class_of = vec![0usize; n];
    let mut classes: Vec<Vec<usize>> = Vec::new();
    for want in [true, false] {
        let members: Vec<usize> = (0..n).filter(|&q| accepting[q] == want).collect();
        if !members.is_empty() {
            for &q in &members {
                class_of[q] = classes.len();
            }
            classes.push(members);
        }
    }
    let mut work: Vec<usize> = (0..classes.len()).collect();
    let mut on_work = vec![true; classes.len()];
    // Scratch: per-class collectors for the splitter preimage, plus a
    // membership mark reused across splits.
    let mut bucket: Vec<Vec<usize>> = vec![Vec::new(); classes.len()];
    let mut in_preimage = vec![false; n];
    while let Some(splitter_id) = work.pop() {
        on_work[splitter_id] = false;
        // Snapshot: the splitter stays valid as a union of classes even
        // if it is itself split below (Hopcroft's invariant).
        let splitter = classes[splitter_id].clone();
        for c in 0..stride {
            // Group delta⁻¹(splitter, c) by current class. delta is a
            // function, so each predecessor appears exactly once.
            let mut touched: Vec<usize> = Vec::new();
            for &q in &splitter {
                for &p in &inv[c][q] {
                    let y = class_of[p];
                    if bucket[y].is_empty() {
                        touched.push(y);
                    }
                    bucket[y].push(p);
                }
            }
            touched.sort_unstable();
            for &y in &touched {
                let moved = std::mem::take(&mut bucket[y]);
                if moved.len() == classes[y].len() {
                    continue; // the whole class maps into the splitter
                }
                for &p in &moved {
                    in_preimage[p] = true;
                }
                let keep: Vec<usize> = classes[y]
                    .iter()
                    .copied()
                    .filter(|&p| !in_preimage[p])
                    .collect();
                for &p in &moved {
                    in_preimage[p] = false;
                }
                let new_id = classes.len();
                for &p in &moved {
                    class_of[p] = new_id;
                }
                classes[y] = keep;
                classes.push(moved);
                bucket.push(Vec::new());
                on_work.push(false);
                // Pending classes must keep both halves queued;
                // otherwise the smaller half suffices.
                if on_work[y] {
                    on_work[new_id] = true;
                    work.push(new_id);
                } else {
                    let smaller = if classes[y].len() <= classes[new_id].len() {
                        y
                    } else {
                        new_id
                    };
                    on_work[smaller] = true;
                    work.push(smaller);
                }
            }
        }
    }
    class_of
}

/// A structure-of-arrays batch stepper: many monitor sessions over one
/// shared compiled table, each session a single `u16` of current state.
/// Stepping the whole fleet by one symbol is a single pass over a flat
/// array — the cache-friendly loop `sld`'s `monitor-step` hot path and
/// the E13 bench ride.
#[derive(Debug)]
pub struct MonitorFleet {
    table: Arc<DenseTable>,
    states: Vec<u16>,
}

impl MonitorFleet {
    /// An empty fleet sharing `monitor`'s table.
    #[must_use]
    pub fn new(monitor: &CompiledMonitor) -> Self {
        MonitorFleet {
            table: Arc::clone(&monitor.table),
            states: Vec::new(),
        }
    }

    /// Adds a session at the initial state; returns its slot index.
    /// Slots are stable for the fleet's lifetime.
    pub fn spawn(&mut self) -> usize {
        self.states.push(self.table.initial);
        self.states.len() - 1
    }

    /// Number of sessions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the fleet has no sessions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Resets one session to the initial state.
    ///
    /// # Panics
    ///
    /// Panics if `slot` was never spawned.
    pub fn reset(&mut self, slot: usize) {
        self.states[slot] = self.table.initial;
    }

    /// One session's current verdict.
    ///
    /// # Panics
    ///
    /// Panics if `slot` was never spawned.
    #[must_use]
    pub fn verdict(&self, slot: usize) -> Verdict {
        self.table.verdict_of(self.states[slot])
    }

    /// Steps one session by one symbol — same semantics as
    /// [`CompiledMonitor::step`].
    ///
    /// # Panics
    ///
    /// Panics if `slot` was never spawned.
    pub fn step(&mut self, slot: usize, sym: Symbol) -> Verdict {
        let next = self.table.next(self.states[slot], sym);
        self.states[slot] = next;
        self.table.verdict_of(next)
    }

    /// Steps *every* session by one symbol in a single pass over the
    /// state array. In-alphabet symbols are one load per session with
    /// no branches (sentinel rows absorb dead/unknown); out-of-alphabet
    /// symbols move every non-dead session to the unknown row.
    pub fn step_all(&mut self, sym: Symbol) {
        let table = &*self.table;
        let s = sym.index();
        if s < table.stride {
            for state in &mut self.states {
                *state = table.cells[*state as usize * table.stride + s];
            }
        } else {
            for state in &mut self.states {
                if *state != table.dead {
                    *state = table.unknown;
                }
            }
        }
    }

    /// One session's raw table state (sentinel rows included) for
    /// snapshot/restore — the table construction is deterministic, so
    /// the index round-trips through a recompile of the same policy.
    ///
    /// # Panics
    ///
    /// Panics if `slot` was never spawned.
    #[must_use]
    pub fn save_state(&self, slot: usize) -> u16 {
        self.states[slot]
    }

    /// Restores a slot's state captured by [`MonitorFleet::save_state`].
    /// Returns `false` (slot unchanged) when `slot` was never spawned
    /// or `raw` is beyond the table's sentinel rows — the fail-closed
    /// answer for a corrupted snapshot.
    pub fn load_state(&mut self, slot: usize, raw: u16) -> bool {
        if slot >= self.states.len() || raw > self.table.unknown {
            return false;
        }
        self.states[slot] = raw;
        true
    }

    /// Counts sessions by verdict: `(ok, violation, unknown)`.
    #[must_use]
    pub fn tally(&self) -> (usize, usize, usize) {
        let (mut ok, mut violation, mut unknown) = (0, 0, 0);
        for &state in &self.states {
            match self.table.verdict_of(state) {
                Verdict::Ok => ok += 1,
                Verdict::Violation => violation += 1,
                Verdict::Unknown => unknown += 1,
            }
        }
        (ok, violation, unknown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::BuchiBuilder;
    use crate::random::{random_buchi, RandomConfig};
    use sl_omega::{all_words, Alphabet};

    fn sigma() -> Alphabet {
        Alphabet::ab()
    }

    /// "First symbol is a" — the monitor module's canonical safety
    /// policy.
    fn first_a(s: &Alphabet) -> Buchi {
        let a = s.symbol("a").unwrap();
        let b = s.symbol("b").unwrap();
        let mut builder = BuchiBuilder::new(s.clone());
        let q0 = builder.add_state(true);
        let q1 = builder.add_state(true);
        builder.add_transition(q0, a, q1);
        builder.add_transition(q1, a, q1);
        builder.add_transition(q1, b, q1);
        builder.build(q0)
    }

    #[test]
    fn compiled_matches_monitor_on_exhaustive_short_words() {
        let s = sigma();
        let policy = first_a(&s);
        let monitor = Monitor::new(&policy);
        let compiled = CompiledMonitor::new(&policy).unwrap();
        for trace in all_words(&s, 5) {
            let (v1, c1) = monitor.clone().run(&trace);
            let (v2, c2) = compiled.clone().run(&trace);
            assert_eq!((v1, c1), (v2, c2), "on {}", trace.display(&s));
        }
    }

    #[test]
    fn compiled_matches_monitor_on_random_automata() {
        let s = sigma();
        for seed in 0..40u64 {
            let policy = random_buchi(
                &s,
                seed,
                RandomConfig {
                    states: 1 + (seed % 5) as usize,
                    density_percent: 60,
                    accepting_percent: 40,
                },
            );
            let monitor = Monitor::new(&policy);
            let compiled = CompiledMonitor::new(&policy).unwrap();
            for trace in all_words(&s, 4) {
                let (v1, c1) = monitor.clone().run(&trace);
                let (v2, c2) = compiled.clone().run(&trace);
                assert_eq!((v1, c1), (v2, c2), "seed {seed} on {}", trace.display(&s));
            }
        }
    }

    #[test]
    fn minimization_is_language_preserving_and_no_larger() {
        let s = sigma();
        for seed in 0..40u64 {
            let policy = random_buchi(
                &s,
                seed,
                RandomConfig {
                    states: 1 + (seed % 6) as usize,
                    density_percent: 55,
                    accepting_percent: 35,
                },
            );
            let minimized = CompiledMonitor::new(&policy).unwrap();
            let raw = CompiledMonitor::without_minimization(&policy).unwrap();
            assert!(
                minimized.num_states() <= raw.num_states(),
                "seed {seed}: minimized {} > raw {}",
                minimized.num_states(),
                raw.num_states()
            );
            assert!(minimized.agrees_with(&raw), "seed {seed}: languages diverge");
            assert!(raw.agrees_with(&minimized), "agreement must be symmetric");
        }
    }

    #[test]
    fn minimization_actually_merges_redundant_states() {
        // Two copies of the same alive behaviour reached
        // nondeterministically produce duplicate subset states; the
        // minimized table must collapse them.
        let s = sigma();
        let a = s.symbol("a").unwrap();
        let b = s.symbol("b").unwrap();
        let mut builder = BuchiBuilder::new(s.clone());
        let q0 = builder.add_state(true);
        let q1 = builder.add_state(true);
        let q2 = builder.add_state(true);
        builder.add_transition(q0, a, q1);
        builder.add_transition(q0, b, q2);
        for q in [q1, q2] {
            builder.add_transition(q, a, q);
            builder.add_transition(q, b, q);
        }
        let policy = builder.build(q0);
        let minimized = CompiledMonitor::new(&policy).unwrap();
        let raw = CompiledMonitor::without_minimization(&policy).unwrap();
        assert!(minimized.num_states() < raw.num_states());
        assert!(minimized.agrees_with(&raw));
    }

    #[test]
    fn sticky_unknown_and_irremediable_violation() {
        let s = sigma();
        let mut m = CompiledMonitor::new(&first_a(&s)).unwrap();
        // Out-of-alphabet from alive: sticky Unknown, reset recovers.
        assert_eq!(m.step(Symbol(999)), Verdict::Unknown);
        assert_eq!(m.step(s.symbol("a").unwrap()), Verdict::Unknown);
        m.reset();
        assert_eq!(m.verdict(), Verdict::Ok);
        // Violation beats Unknown once dead.
        m.run(&Word::parse(&s, "b"));
        assert_eq!(m.verdict(), Verdict::Violation);
        assert_eq!(m.step(Symbol(500)), Verdict::Violation);
    }

    #[test]
    fn empty_policy_compiles_to_the_dead_sentinel() {
        let s = sigma();
        let mut m = CompiledMonitor::new(&Buchi::empty_language(s.clone())).unwrap();
        assert_eq!(m.num_states(), 0);
        assert_eq!(m.verdict(), Verdict::Violation);
        let (v, consumed) = m.run(&Word::parse(&s, "a"));
        assert_eq!((v, consumed), (Verdict::Violation, 1));
        assert_eq!(m.step(Symbol(77)), Verdict::Violation, "still a violation");
    }

    #[test]
    fn budgeted_twin_matches_monitor_semantics() {
        let s = sigma();
        let policy = first_a(&s);
        let trace = Word::parse(&s, "a b a b a b");
        let mut compiled = CompiledMonitor::new(&policy).unwrap();
        let (v, consumed) = compiled.run_with_budget(&trace, &Budget::unlimited()).unwrap();
        assert_eq!((v, consumed), (Verdict::Ok, 6));
        let err = compiled
            .run_with_budget(&trace, &Budget::unlimited().with_steps(3))
            .unwrap_err();
        assert!(err.is_budget_exceeded());
        assert_eq!(err.spent(), Some(4), "same charge pattern as Monitor");
    }

    #[test]
    fn fleet_slots_track_independent_sessions() {
        let s = sigma();
        let compiled = CompiledMonitor::new(&first_a(&s)).unwrap();
        let mut fleet = MonitorFleet::new(&compiled);
        let s0 = fleet.spawn();
        let s1 = fleet.spawn();
        let s2 = fleet.spawn();
        assert_eq!(fleet.len(), 3);
        let a = s.symbol("a").unwrap();
        let b = s.symbol("b").unwrap();
        assert_eq!(fleet.step(s0, a), Verdict::Ok);
        assert_eq!(fleet.step(s1, b), Verdict::Violation);
        assert_eq!(fleet.step(s2, Symbol(1000)), Verdict::Unknown);
        assert_eq!(fleet.verdict(s0), Verdict::Ok);
        assert_eq!(fleet.verdict(s1), Verdict::Violation);
        assert_eq!(fleet.verdict(s2), Verdict::Unknown);
        assert_eq!(fleet.tally(), (1, 1, 1));
        fleet.reset(s1);
        assert_eq!(fleet.verdict(s1), Verdict::Ok);
    }

    #[test]
    fn fleet_step_all_matches_individual_stepping() {
        let s = sigma();
        let policy = first_a(&s);
        let compiled = CompiledMonitor::new(&policy).unwrap();
        let mut fleet = MonitorFleet::new(&compiled);
        let mut singles: Vec<CompiledMonitor> = Vec::new();
        for _ in 0..16 {
            fleet.spawn();
            singles.push(compiled.clone());
        }
        // Desynchronize the sessions, then batch-step and compare.
        let symbols = [Symbol(0), Symbol(1), Symbol(0), Symbol(9999), Symbol(1)];
        for (i, single) in singles.iter_mut().enumerate() {
            for sym in symbols.iter().take(i % symbols.len()) {
                single.step(*sym);
                fleet.step(i, *sym);
            }
        }
        for sym in symbols {
            fleet.step_all(sym);
            for (i, single) in singles.iter_mut().enumerate() {
                assert_eq!(single.step(sym), fleet.verdict(i), "slot {i} on {sym:?}");
            }
        }
    }

    #[test]
    fn fleet_slot_state_round_trips_across_a_rebuild() {
        let s = sigma();
        let policy = first_a(&s);
        let compiled = CompiledMonitor::new(&policy).unwrap();
        let mut fleet = MonitorFleet::new(&compiled);
        let (s0, s1, s2) = (fleet.spawn(), fleet.spawn(), fleet.spawn());
        fleet.step(s0, s.symbol("a").unwrap());
        fleet.step(s1, s.symbol("b").unwrap());
        fleet.step(s2, Symbol(1000));
        // Rebuild the table from the same policy (deterministic), spawn
        // the same slots, restore the raw states: verdicts carry over.
        let recompiled = CompiledMonitor::new(&policy).unwrap();
        let mut restored = MonitorFleet::new(&recompiled);
        for slot in [s0, s1, s2] {
            let fresh = restored.spawn();
            assert!(restored.load_state(fresh, fleet.save_state(slot)));
        }
        assert_eq!(restored.verdict(s0), Verdict::Ok);
        assert_eq!(restored.verdict(s1), Verdict::Violation);
        assert_eq!(restored.verdict(s2), Verdict::Unknown);
        // Beyond-sentinel raw states and unspawned slots are rejected.
        assert!(!restored.load_state(s0, u16::MAX));
        assert!(!restored.load_state(99, 0));
    }

    #[test]
    fn agrees_with_detects_genuine_differences() {
        let s = sigma();
        let first = CompiledMonitor::new(&first_a(&s)).unwrap();
        let universal = CompiledMonitor::new(&Buchi::universal(s.clone())).unwrap();
        assert!(!first.agrees_with(&universal));
        assert!(first.agrees_with(&first.clone()));
    }
}
