//! The workspace-wide error taxonomy.
//!
//! Every long-running algorithm in the workspace (complementation,
//! Zielonka, the LTL tableau, closure enumeration, the tree-closure
//! checkers) has a `*_with_budget` / `try_*` entry point that returns
//! [`SlError`] instead of looping forever or panicking on untrusted
//! input. Domain-specific errors (`sl-lattice`'s `LatticeError`,
//! `sl-buchi`'s `ComplementBudgetExceeded`) convert into this taxonomy
//! via `From` impls in their own crates, and [`SlError::context`] builds
//! context chains that keep the original failure visible through
//! [`std::error::Error::source`].

use std::fmt;

/// The workspace-wide error type for fallible, budgeted, and hardened
/// entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlError {
    /// A step or wall-clock budget ran out mid-algorithm. `spent` is the
    /// number of budgeted steps charged before the limit hit, so
    /// callers can tell "never started" from "ran out mid-flight".
    BudgetExceeded {
        /// The algorithm phase that was executing (e.g.
        /// `"buchi.complement"`).
        phase: &'static str,
        /// Steps charged before the budget ran out (nonzero once the
        /// algorithm has made any progress).
        spent: u64,
    },
    /// A cooperative cancellation flag was raised while the algorithm
    /// was running.
    Cancelled {
        /// The algorithm phase that observed the cancellation.
        phase: &'static str,
        /// Steps charged before the cancellation was observed.
        spent: u64,
    },
    /// A deterministic injected fault from [`crate::fault::FaultPlan`]
    /// fired at this site (testing/fault-drill paths only).
    FaultInjected {
        /// The injection site name (e.g. `"par.worker"`).
        site: &'static str,
        /// The per-site invocation index that fired.
        index: u64,
    },
    /// Untrusted input failed validation (out-of-alphabet symbol,
    /// oversized structure, malformed index, ...).
    InvalidInput(String),
    /// A domain error absorbed from another crate (`lattice`, `buchi`,
    /// ...), carrying its rendered message.
    Domain {
        /// The domain the error came from (e.g. `"lattice"`).
        domain: &'static str,
        /// The rendered domain-specific error message.
        message: String,
    },
    /// A wrapped error with one frame of added context; chains nest.
    Context {
        /// What the caller was doing when the inner error surfaced.
        context: String,
        /// The underlying error.
        source: Box<SlError>,
    },
}

impl SlError {
    /// Wraps the error with one frame of context, building a chain that
    /// renders outermost-first and stays walkable via
    /// [`std::error::Error::source`].
    #[must_use]
    pub fn context(self, context: impl Into<String>) -> SlError {
        SlError::Context {
            context: context.into(),
            source: Box::new(self),
        }
    }

    /// The innermost error of a context chain (`self` when unwrapped).
    #[must_use]
    pub fn root(&self) -> &SlError {
        match self {
            SlError::Context { source, .. } => source.root(),
            other => other,
        }
    }

    /// Whether the root cause is a spent budget (step or deadline).
    #[must_use]
    pub fn is_budget_exceeded(&self) -> bool {
        matches!(self.root(), SlError::BudgetExceeded { .. })
    }

    /// Whether the root cause is a cooperative cancellation.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        matches!(self.root(), SlError::Cancelled { .. })
    }

    /// Whether the root cause is an injected fault.
    #[must_use]
    pub fn is_fault_injected(&self) -> bool {
        matches!(self.root(), SlError::FaultInjected { .. })
    }

    /// Budgeted steps spent before a budget/cancellation root cause
    /// surfaced, if that is what this error is.
    #[must_use]
    pub fn spent(&self) -> Option<u64> {
        match self.root() {
            SlError::BudgetExceeded { spent, .. } | SlError::Cancelled { spent, .. } => {
                Some(*spent)
            }
            _ => None,
        }
    }
}

impl fmt::Display for SlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SlError::BudgetExceeded { phase, spent } => {
                write!(f, "budget exceeded in {phase} after {spent} steps")
            }
            SlError::Cancelled { phase, spent } => {
                write!(f, "cancelled in {phase} after {spent} steps")
            }
            SlError::FaultInjected { site, index } => {
                write!(f, "injected fault at {site}#{index}")
            }
            SlError::InvalidInput(what) => write!(f, "invalid input: {what}"),
            SlError::Domain { domain, message } => write!(f, "{domain} error: {message}"),
            SlError::Context { context, source } => write!(f, "{context}: {source}"),
        }
    }
}

impl std::error::Error for SlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SlError::Context { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn context_chain_renders_outermost_first() {
        let err = SlError::BudgetExceeded {
            phase: "buchi.complement",
            spent: 17,
        }
        .context("deciding inclusion")
        .context("classifying formula");
        assert_eq!(
            err.to_string(),
            "classifying formula: deciding inclusion: \
             budget exceeded in buchi.complement after 17 steps"
        );
        assert!(err.is_budget_exceeded());
        assert_eq!(err.spent(), Some(17));
    }

    #[test]
    fn source_walks_the_chain() {
        let err = SlError::InvalidInput("symbol 9 out of alphabet".into()).context("monitor step");
        let source = err.source().expect("context has a source");
        assert_eq!(source.to_string(), "invalid input: symbol 9 out of alphabet");
        assert!(source.source().is_none());
    }

    #[test]
    fn root_sees_through_nesting() {
        let root = SlError::Cancelled {
            phase: "games.zielonka",
            spent: 3,
        };
        let wrapped = root.clone().context("a").context("b");
        assert_eq!(wrapped.root(), &root);
        assert!(wrapped.is_cancelled());
        assert!(!wrapped.is_budget_exceeded());
    }

    #[test]
    fn display_variants_are_nonempty() {
        let samples = [
            SlError::FaultInjected {
                site: "par.worker",
                index: 4,
            },
            SlError::Domain {
                domain: "lattice",
                message: "structure must be nonempty".into(),
            },
            SlError::InvalidInput("bad".into()),
        ];
        for err in samples {
            assert!(!err.to_string().is_empty());
        }
    }
}
