//! Execution budgets: step limits, wall-clock deadlines, and
//! cooperative cancellation.
//!
//! A [`Budget`] is an immutable spec combining up to three limits:
//!
//! * a **step limit** — an upper bound on the abstract work units an
//!   algorithm may charge (states explored, tableau nodes expanded,
//!   closure tables examined, ...);
//! * a **deadline** — a wall-clock instant past which the algorithm
//!   must stop;
//! * a **cancellation flag** — a shared atomic ([`CancelFlag`]) any
//!   thread can raise to stop the work cooperatively.
//!
//! Algorithms call [`Budget::meter`] once per invocation to obtain a
//! [`BudgetMeter`], then [`BudgetMeter::charge`] from their inner loop.
//! The first violated limit surfaces as a typed
//! [`SlError::BudgetExceeded`] (steps/deadline) or
//! [`SlError::Cancelled`], carrying the phase name and the number of
//! steps spent — so a caller can distinguish "never started" from "ran
//! out mid-flight" and report partial progress.
//!
//! The default budget for env-configurable entry points comes from
//! [`Budget::from_env`]: `SL_BUDGET_STEPS` (a positive integer) and
//! `SL_BUDGET_MS` (a deadline in milliseconds from process start of the
//! algorithm). Both unset means unlimited.

use crate::error::SlError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared cooperative-cancellation flag. Cloning shares the flag:
/// raising it from any clone cancels every algorithm metering a budget
/// that carries it.
#[derive(Debug, Clone, Default)]
pub struct CancelFlag(Arc<AtomicBool>);

impl CancelFlag {
    /// A fresh, unraised flag.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the flag; every meter observing it fails its next charge.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether the flag has been raised.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// An execution budget: any combination of a step limit, a wall-clock
/// deadline, and a cancellation flag. The default ([`Budget::unlimited`])
/// imposes no limit at all, so `*_with_budget` entry points subsume
/// their unbudgeted siblings.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    max_steps: Option<u64>,
    deadline: Option<Instant>,
    cancel: Option<CancelFlag>,
}

impl Budget {
    /// A budget with no limits: every charge succeeds.
    #[must_use]
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Caps the abstract step count at `n`.
    #[must_use]
    pub fn with_steps(mut self, n: u64) -> Self {
        self.max_steps = Some(n);
        self
    }

    /// Sets the deadline to `d` from now.
    #[must_use]
    pub fn with_deadline_in(mut self, d: Duration) -> Self {
        self.deadline = Some(Instant::now() + d);
        self
    }

    /// Sets an absolute deadline.
    #[must_use]
    pub fn with_deadline(mut self, at: Instant) -> Self {
        self.deadline = Some(at);
        self
    }

    /// Attaches a cancellation flag (shared with the caller's clone).
    #[must_use]
    pub fn with_cancel(mut self, flag: &CancelFlag) -> Self {
        self.cancel = Some(flag.clone());
        self
    }

    /// Reads `SL_BUDGET_STEPS` (positive integer step cap) and
    /// `SL_BUDGET_MS` (deadline in milliseconds from now). Unset or
    /// unparsable variables contribute no limit.
    #[must_use]
    pub fn from_env() -> Self {
        let mut budget = Budget::unlimited();
        if let Some(steps) = env_u64("SL_BUDGET_STEPS") {
            budget = budget.with_steps(steps);
        }
        if let Some(ms) = env_u64("SL_BUDGET_MS") {
            budget = budget.with_deadline_in(Duration::from_millis(ms));
        }
        budget
    }

    /// Whether no limit of any kind is attached.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.max_steps.is_none() && self.deadline.is_none() && self.cancel.is_none()
    }

    /// Starts metering this budget for one algorithm invocation. The
    /// `phase` names the algorithm in resulting errors (e.g.
    /// `"buchi.complement"`).
    #[must_use]
    pub fn meter(&self, phase: &'static str) -> BudgetMeter {
        BudgetMeter {
            phase,
            spent: 0,
            max_steps: self.max_steps,
            deadline: self.deadline,
            cancel: self.cancel.clone(),
        }
    }
}

/// A running meter over one algorithm invocation: counts steps spent
/// and enforces the budget's limits on every charge.
#[derive(Debug, Clone)]
pub struct BudgetMeter {
    phase: &'static str,
    spent: u64,
    max_steps: Option<u64>,
    deadline: Option<Instant>,
    cancel: Option<CancelFlag>,
}

impl BudgetMeter {
    /// Charges `n` abstract steps.
    ///
    /// # Errors
    ///
    /// [`SlError::BudgetExceeded`] when the step limit or deadline is
    /// passed, [`SlError::Cancelled`] when the flag is raised. `spent`
    /// in the error includes the failing charge, so it is nonzero
    /// whenever the algorithm made any progress.
    #[inline]
    pub fn charge(&mut self, n: u64) -> Result<(), SlError> {
        self.spent += n;
        if let Some(limit) = self.max_steps {
            if self.spent > limit {
                return Err(SlError::BudgetExceeded {
                    phase: self.phase,
                    spent: self.spent,
                });
            }
        }
        if let Some(flag) = &self.cancel {
            if flag.is_cancelled() {
                return Err(SlError::Cancelled {
                    phase: self.phase,
                    spent: self.spent,
                });
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(SlError::BudgetExceeded {
                    phase: self.phase,
                    spent: self.spent,
                });
            }
        }
        Ok(())
    }

    /// Charges one step — the common inner-loop call.
    ///
    /// # Errors
    ///
    /// As for [`BudgetMeter::charge`].
    #[inline]
    pub fn tick(&mut self) -> Result<(), SlError> {
        self.charge(1)
    }

    /// Charges one step, but only *evaluates* the limits every `stride`
    /// steps — for fixpoint loops whose iterations are cheaper than an
    /// `Instant::now()` call. The step count stays exact; enforcement is
    /// late by at most `stride - 1` steps, so callers trade that bounded
    /// overshoot for a `stride`-fold cheaper check. A `stride` of 1 is
    /// exactly [`BudgetMeter::tick`].
    ///
    /// # Errors
    ///
    /// As for [`BudgetMeter::charge`], on the steps where the limits
    /// are evaluated.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    #[inline]
    pub fn tick_every(&mut self, stride: u64) -> Result<(), SlError> {
        assert!(stride > 0, "stride must be positive");
        self.spent += 1;
        if self.spent.is_multiple_of(stride) {
            // Re-run the full limit evaluation on the already-counted
            // step: charge(0) checks steps/cancel/deadline at `spent`.
            self.charge(0)
        } else {
            Ok(())
        }
    }

    /// Steps charged so far (including any failing charge).
    #[must_use]
    pub fn spent(&self) -> u64 {
        self.spent
    }

    /// The phase name this meter reports in errors.
    #[must_use]
    pub fn phase(&self) -> &'static str {
        self.phase
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name)
        .ok()
        .and_then(|raw| raw.trim().parse::<u64>().ok())
        .filter(|&n| n > 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_fails() {
        let mut meter = Budget::unlimited().meter("test");
        for _ in 0..10_000 {
            meter.tick().unwrap();
        }
        assert_eq!(meter.spent(), 10_000);
    }

    #[test]
    fn step_limit_fails_with_spent_count() {
        let mut meter = Budget::unlimited().with_steps(3).meter("test.steps");
        meter.tick().unwrap();
        meter.tick().unwrap();
        meter.tick().unwrap();
        let err = meter.tick().unwrap_err();
        assert_eq!(
            err,
            SlError::BudgetExceeded {
                phase: "test.steps",
                spent: 4
            }
        );
    }

    #[test]
    fn expired_deadline_fails_first_charge_with_nonzero_spent() {
        let budget = Budget::unlimited().with_deadline(Instant::now());
        let mut meter = budget.meter("test.deadline");
        let err = meter.tick().unwrap_err();
        assert!(err.is_budget_exceeded());
        assert!(err.spent().unwrap() > 0);
    }

    #[test]
    fn cancellation_is_observed_and_shared() {
        let flag = CancelFlag::new();
        let budget = Budget::unlimited().with_cancel(&flag);
        let mut meter = budget.meter("test.cancel");
        meter.tick().unwrap();
        flag.clone().cancel();
        let err = meter.tick().unwrap_err();
        assert!(err.is_cancelled());
        assert_eq!(err.spent(), Some(2));
    }

    #[test]
    fn future_deadline_allows_work() {
        let budget = Budget::unlimited().with_deadline_in(Duration::from_secs(3600));
        let mut meter = budget.meter("test");
        for _ in 0..1000 {
            meter.tick().unwrap();
        }
    }

    #[test]
    fn from_env_is_unlimited_when_unset() {
        // The test harness does not set SL_BUDGET_*; guard against
        // other tests polluting the environment by only asserting the
        // parse of an absent variable.
        assert!(env_u64("SL_BUDGET_DOES_NOT_EXIST").is_none());
    }

    #[test]
    fn tick_every_counts_exactly_and_enforces_late() {
        let mut meter = Budget::unlimited().with_steps(10).meter("test.stride");
        // 10 allowed steps, stride 4: checks fire at 4, 8, 12 — the
        // overshoot past the limit is caught at the next stride point.
        let mut failed_at = None;
        for i in 1..=16u64 {
            if meter.tick_every(4).is_err() {
                failed_at = Some(i);
                break;
            }
        }
        assert_eq!(failed_at, Some(12), "first evaluated step past limit");
        assert_eq!(meter.spent(), 12, "spent stays exact despite striding");
    }

    #[test]
    fn tick_every_stride_one_matches_tick() {
        let mut a = Budget::unlimited().with_steps(3).meter("test.s1");
        let mut b = Budget::unlimited().with_steps(3).meter("test.s1");
        for _ in 0..3 {
            a.tick().unwrap();
            b.tick_every(1).unwrap();
        }
        assert_eq!(a.tick().is_err(), b.tick_every(1).is_err());
        assert_eq!(a.spent(), b.spent());
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn tick_every_rejects_zero_stride() {
        let mut meter = Budget::unlimited().meter("test.zero");
        let _ = meter.tick_every(0);
    }

    #[test]
    fn charge_batches_count_fully() {
        let mut meter = Budget::unlimited().with_steps(10).meter("test.batch");
        meter.charge(8).unwrap();
        let err = meter.charge(5).unwrap_err();
        assert_eq!(err.spent(), Some(13));
    }
}
