//! Deterministic, seeded fault injection.
//!
//! A [`FaultPlan`] decides, purely from `(seed, site, index)`, whether
//! an injection point fires. Decisions are keyed off the workspace's
//! SplitMix64 stream ([`crate::rng::SplitMix`]), so a recorded
//! `(SL_FAULT_SEED, SL_FAULT_RATE)` pair replays the exact same fault
//! pattern on every run — fault drills are as reproducible as the
//! seeded test corpora.
//!
//! Injection points in the workspace (all no-ops when the rate is 0):
//!
//! * `"par.worker"` — panics a parallel sweep item inside
//!   [`crate::par::try_par_map`]'s isolation boundary, exercising the
//!   catch-and-pinpoint path;
//! * `"buchi.complement"` — fails a rank-based complementation
//!   mid-construction with a typed error;
//! * `"buchi.complement_cache"` — invalidates a memoized complement,
//!   forcing a (behavior-preserving) recomputation.
//!
//! Environment knobs: `SL_FAULT_SEED` (u64, default 0) and
//! `SL_FAULT_RATE` (probability in `[0, 1]`, default 0 = disabled),
//! read once per process by [`global`].

use crate::error::SlError;
use crate::rng::{SplitMix, GOLDEN_GAMMA};
use std::sync::OnceLock;

/// A deterministic fault-injection plan: a seed plus a firing rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rate: f64,
}

impl FaultPlan {
    /// A plan that never fires (the default for production paths).
    #[must_use]
    pub fn disabled() -> Self {
        FaultPlan { seed: 0, rate: 0.0 }
    }

    /// A plan firing with probability `rate` (clamped to `[0, 1]`),
    /// deterministically in `(seed, site, index)`.
    #[must_use]
    pub fn new(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            rate: rate.clamp(0.0, 1.0),
        }
    }

    /// Reads `SL_FAULT_SEED` / `SL_FAULT_RATE`; unset or unparsable
    /// values yield the disabled plan.
    #[must_use]
    pub fn from_env() -> Self {
        let seed = std::env::var("SL_FAULT_SEED")
            .ok()
            .and_then(|raw| raw.trim().parse::<u64>().ok())
            .unwrap_or(0);
        let rate = std::env::var("SL_FAULT_RATE")
            .ok()
            .and_then(|raw| raw.trim().parse::<f64>().ok())
            .unwrap_or(0.0);
        FaultPlan::new(seed, rate)
    }

    /// Whether any site can ever fire under this plan.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.rate > 0.0
    }

    /// The firing decision for invocation `index` of `site`: a pure
    /// function of `(seed, site, index)` — independent of thread
    /// interleaving, call order, and every other site.
    #[must_use]
    pub fn should_fault(&self, site: &str, index: u64) -> bool {
        if self.rate <= 0.0 {
            return false;
        }
        let mut rng = SplitMix::new(
            self.seed
                ^ fnv1a(site.as_bytes())
                ^ index.wrapping_mul(GOLDEN_GAMMA),
        );
        // 53 uniform mantissa bits -> [0, 1).
        let draw = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        draw < self.rate
    }

    /// Panics with a recognizable message if the site fires — the
    /// injection shape for panic-isolation drills. The message prefix
    /// `sl-fault:` lets reports distinguish injected panics from real
    /// ones.
    pub fn inject_panic(&self, site: &str, index: u64) {
        if self.should_fault(site, index) {
            panic!("sl-fault: injected panic at {site}#{index}");
        }
    }

    /// Returns a typed [`SlError::FaultInjected`] if the site fires —
    /// the injection shape for error-propagation drills.
    ///
    /// # Errors
    ///
    /// [`SlError::FaultInjected`] when `(seed, site, index)` fires.
    pub fn inject_error(&self, site: &'static str, index: u64) -> Result<(), SlError> {
        if self.should_fault(site, index) {
            Err(SlError::FaultInjected { site, index })
        } else {
            Ok(())
        }
    }
}

/// The process-wide plan, read once from `SL_FAULT_SEED` /
/// `SL_FAULT_RATE`. Library injection points consult this; tests that
/// need a specific pattern construct explicit [`FaultPlan`]s instead.
pub fn global() -> &'static FaultPlan {
    static PLAN: OnceLock<FaultPlan> = OnceLock::new();
    PLAN.get_or_init(FaultPlan::from_env)
}

/// FNV-1a over the site name: stable, allocation-free site hashing.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_fires() {
        let plan = FaultPlan::disabled();
        for i in 0..1000 {
            assert!(!plan.should_fault("par.worker", i));
        }
        assert!(!plan.is_enabled());
    }

    #[test]
    fn full_rate_always_fires() {
        let plan = FaultPlan::new(7, 1.0);
        for i in 0..100 {
            assert!(plan.should_fault("anything", i));
        }
    }

    #[test]
    fn decisions_are_deterministic_and_site_dependent() {
        let plan = FaultPlan::new(2003, 0.5);
        let a: Vec<bool> = (0..256).map(|i| plan.should_fault("site.a", i)).collect();
        let b: Vec<bool> = (0..256).map(|i| plan.should_fault("site.a", i)).collect();
        assert_eq!(a, b, "same (seed, site, index) must replay identically");
        let c: Vec<bool> = (0..256).map(|i| plan.should_fault("site.b", i)).collect();
        assert_ne!(a, c, "different sites draw independent streams");
    }

    #[test]
    fn rate_is_roughly_respected() {
        let plan = FaultPlan::new(42, 0.1);
        let fired = (0..10_000)
            .filter(|&i| plan.should_fault("rate.check", i))
            .count();
        assert!((500..2000).contains(&fired), "10% of 10k, got {fired}");
    }

    #[test]
    fn inject_error_is_typed() {
        let plan = FaultPlan::new(1, 1.0);
        let err = plan.inject_error("drill", 9).unwrap_err();
        assert_eq!(
            err,
            SlError::FaultInjected {
                site: "drill",
                index: 9
            }
        );
        FaultPlan::disabled().inject_error("drill", 9).unwrap();
    }

    #[test]
    fn inject_panic_fires_with_marker() {
        let plan = FaultPlan::new(1, 1.0);
        let caught = std::panic::catch_unwind(|| plan.inject_panic("drill", 0)).unwrap_err();
        let message = caught
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(message.starts_with("sl-fault:"), "{message}");
    }

    #[test]
    fn rate_clamps() {
        assert!(FaultPlan::new(0, 7.5).should_fault("x", 0));
        assert!(!FaultPlan::new(0, -3.0).is_enabled());
    }
}
