//! A wall-clock micro-benchmark harness.
//!
//! Replaces the `criterion` dependency for the workspace's benches:
//! each measurement warms the closure up, auto-calibrates a batch size
//! so one sample is long enough for the clock to resolve, collects a
//! configurable number of samples, and reports min / median / p95
//! per-call times on one line.
//!
//! Configuration:
//!
//! * `SL_BENCH_SAMPLES` — timed samples per benchmark (default 30);
//! * `SL_BENCH_WARMUP_MS` — warmup duration per benchmark (default 80).
//!
//! Benches stay `harness = false` binaries; a `main` simply calls
//! [`Bench::measure`] per case:
//!
//! ```no_run
//! use sl_support::bench::{black_box, Bench};
//!
//! let mut bench = Bench::from_env();
//! bench.measure("sum/1000", || {
//!     black_box((0u64..1000).sum::<u64>());
//! });
//! ```

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target duration for one calibrated sample batch.
const TARGET_SAMPLE: Duration = Duration::from_millis(2);

/// The harness: holds the run configuration and prints one report line
/// per measurement.
#[derive(Debug, Clone, Copy)]
pub struct Bench {
    /// Timed samples collected per benchmark.
    pub samples: u32,
    /// Warmup duration before sampling starts.
    pub warmup: Duration,
}

impl Default for Bench {
    fn default() -> Self {
        Bench {
            samples: 30,
            warmup: Duration::from_millis(80),
        }
    }
}

impl Bench {
    /// Reads `SL_BENCH_SAMPLES` / `SL_BENCH_WARMUP_MS`, with defaults.
    #[must_use]
    pub fn from_env() -> Self {
        let defaults = Bench::default();
        let samples = std::env::var("SL_BENCH_SAMPLES")
            .ok()
            .and_then(|raw| raw.trim().parse::<u32>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(defaults.samples);
        let warmup = std::env::var("SL_BENCH_WARMUP_MS")
            .ok()
            .and_then(|raw| raw.trim().parse::<u64>().ok())
            .map_or(defaults.warmup, Duration::from_millis);
        Bench { samples, warmup }
    }

    /// Runs one benchmark and prints its report line. Returns the
    /// median per-call time for callers that post-process.
    pub fn measure(&mut self, name: &str, mut f: impl FnMut()) -> Duration {
        // Warmup, also measuring a rough per-call time for calibration.
        let warmup_start = Instant::now();
        let mut warmup_calls = 0u64;
        while warmup_start.elapsed() < self.warmup || warmup_calls == 0 {
            f();
            warmup_calls += 1;
        }
        let per_call_estimate = warmup_start.elapsed() / warmup_calls.max(1) as u32;
        // Batch enough calls that one sample hits the target duration.
        let batch = if per_call_estimate.is_zero() {
            1024
        } else {
            (TARGET_SAMPLE.as_nanos() / per_call_estimate.as_nanos().max(1))
                .clamp(1, 1 << 20) as u32
        };
        let mut per_call: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..batch {
                    f();
                }
                start.elapsed() / batch
            })
            .collect();
        per_call.sort_unstable();
        let min = per_call[0];
        let median = per_call[per_call.len() / 2];
        let p95 = per_call[(per_call.len() * 95 / 100).min(per_call.len() - 1)];
        println!(
            "bench  {name:<44} median {:>12}  p95 {:>12}  min {:>12}  ({} samples x {batch} calls)",
            format_duration(median),
            format_duration(p95),
            format_duration(min),
            self.samples,
        );
        median
    }
}

/// Renders a duration with a unit fitting its magnitude.
#[must_use]
pub fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} us", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_runs_and_reports() {
        let mut bench = Bench {
            samples: 5,
            warmup: Duration::from_millis(1),
        };
        let median = bench.measure("test/busy", || {
            black_box((0u64..100).sum::<u64>());
        });
        assert!(median < Duration::from_secs(1));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(format_duration(Duration::from_micros(12)), "12.00 us");
        assert_eq!(format_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.00 s");
    }
}
