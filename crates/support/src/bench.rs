//! A wall-clock micro-benchmark harness.
//!
//! Replaces the `criterion` dependency for the workspace's benches:
//! each measurement warms the closure up, auto-calibrates a batch size
//! so one sample is long enough for the clock to resolve, collects a
//! configurable number of samples, and reports min / median / p95
//! per-call times on one line.
//!
//! Configuration:
//!
//! * `SL_BENCH_SAMPLES` — timed samples per benchmark (default 30);
//! * `SL_BENCH_WARMUP_MS` — warmup duration per benchmark (default 80);
//! * `SL_BENCH_JSON_DIR` — directory for the machine-readable
//!   `BENCH_<suite>.json` reports (default: current directory).
//!
//! Every measurement is also recorded as a [`BenchRecord`];
//! [`Bench::write_json`] dumps the suite's records as
//! `BENCH_<suite>.json` so the performance trajectory accumulates
//! across PRs in a diffable, machine-readable form.
//!
//! Benches stay `harness = false` binaries; a `main` simply calls
//! [`Bench::measure`] per case:
//!
//! ```no_run
//! use sl_support::bench::{black_box, Bench};
//!
//! let mut bench = Bench::from_env();
//! bench.measure("sum/1000", || {
//!     black_box((0u64..1000).sum::<u64>());
//! });
//! ```

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target duration for one calibrated sample batch.
const TARGET_SAMPLE: Duration = Duration::from_millis(2);

/// One completed measurement, in nanoseconds, for machine-readable
/// reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchRecord {
    /// The benchmark's name (the `measure` label).
    pub name: String,
    /// Median per-call time in nanoseconds.
    pub median_ns: u128,
    /// 95th-percentile per-call time in nanoseconds.
    pub p95_ns: u128,
    /// Minimum per-call time in nanoseconds.
    pub min_ns: u128,
    /// Timed samples collected.
    pub samples: u32,
    /// Calls per sample batch.
    pub batch: u32,
}

/// The harness: holds the run configuration, prints one report line per
/// measurement, and records every measurement for JSON export.
#[derive(Debug, Clone)]
pub struct Bench {
    /// Timed samples collected per benchmark.
    pub samples: u32,
    /// Warmup duration before sampling starts.
    pub warmup: Duration,
    records: Vec<BenchRecord>,
}

impl Default for Bench {
    fn default() -> Self {
        Bench {
            samples: 30,
            warmup: Duration::from_millis(80),
            records: Vec::new(),
        }
    }
}

impl Bench {
    /// Reads `SL_BENCH_SAMPLES` / `SL_BENCH_WARMUP_MS`, with defaults.
    #[must_use]
    pub fn from_env() -> Self {
        let defaults = Bench::default();
        let samples = std::env::var("SL_BENCH_SAMPLES")
            .ok()
            .and_then(|raw| raw.trim().parse::<u32>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(defaults.samples);
        let warmup = std::env::var("SL_BENCH_WARMUP_MS")
            .ok()
            .and_then(|raw| raw.trim().parse::<u64>().ok())
            .map_or(defaults.warmup, Duration::from_millis);
        Bench {
            samples,
            warmup,
            records: Vec::new(),
        }
    }

    /// Runs one benchmark and prints its report line. Returns the
    /// median per-call time for callers that post-process.
    pub fn measure(&mut self, name: &str, mut f: impl FnMut()) -> Duration {
        // Warmup, also measuring a rough per-call time for calibration.
        let warmup_start = Instant::now();
        let mut warmup_calls = 0u64;
        while warmup_start.elapsed() < self.warmup || warmup_calls == 0 {
            f();
            warmup_calls += 1;
        }
        let per_call_estimate = warmup_start.elapsed() / warmup_calls.max(1) as u32;
        // Batch enough calls that one sample hits the target duration.
        let batch = if per_call_estimate.is_zero() {
            1024
        } else {
            (TARGET_SAMPLE.as_nanos() / per_call_estimate.as_nanos().max(1))
                .clamp(1, 1 << 20) as u32
        };
        let mut per_call: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..batch {
                    f();
                }
                start.elapsed() / batch
            })
            .collect();
        per_call.sort_unstable();
        let min = per_call[0];
        let median = per_call[per_call.len() / 2];
        let p95 = per_call[(per_call.len() * 95 / 100).min(per_call.len() - 1)];
        println!(
            "bench  {name:<44} median {:>12}  p95 {:>12}  min {:>12}  ({} samples x {batch} calls)",
            format_duration(median),
            format_duration(p95),
            format_duration(min),
            self.samples,
        );
        self.records.push(BenchRecord {
            name: name.to_string(),
            median_ns: median.as_nanos(),
            p95_ns: p95.as_nanos(),
            min_ns: min.as_nanos(),
            samples: self.samples,
            batch,
        });
        median
    }

    /// Records one externally-timed call as a single-sample
    /// measurement and prints the standard report line.
    ///
    /// For calls too expensive to warm up, batch and sample — the
    /// minutes-per-call regime — time the call once with
    /// [`Instant`] and report it here: median, p95 and min all equal
    /// the one observation, and `samples`/`batch` are recorded as 1
    /// so readers of the JSON can tell it apart from a sampled run.
    pub fn record_single(&mut self, name: &str, elapsed: Duration) {
        println!(
            "bench  {name:<44} median {:>12}  p95 {:>12}  min {:>12}  (1 sample x 1 call)",
            format_duration(elapsed),
            format_duration(elapsed),
            format_duration(elapsed),
        );
        self.records.push(BenchRecord {
            name: name.to_string(),
            median_ns: elapsed.as_nanos(),
            p95_ns: elapsed.as_nanos(),
            min_ns: elapsed.as_nanos(),
            samples: 1,
            batch: 1,
        });
    }

    /// The measurements recorded so far, in execution order.
    #[must_use]
    pub fn records(&self) -> &[BenchRecord] {
        &self.records
    }

    /// Renders the recorded measurements as a JSON document (no
    /// external dependencies: the format is flat and hand-rolled).
    #[must_use]
    pub fn to_json(&self, suite: &str) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"suite\": \"{}\",\n", escape_json(suite)));
        out.push_str("  \"records\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"median_ns\": {}, \"p95_ns\": {}, \
                 \"min_ns\": {}, \"samples\": {}, \"batch\": {}}}{}\n",
                escape_json(&r.name),
                r.median_ns,
                r.p95_ns,
                r.min_ns,
                r.samples,
                r.batch,
                if i + 1 < self.records.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes `BENCH_<suite>.json` into `SL_BENCH_JSON_DIR` (default:
    /// the current directory) and returns the path written.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write_json(&self, suite: &str) -> std::io::Result<std::path::PathBuf> {
        let dir = std::env::var("SL_BENCH_JSON_DIR").unwrap_or_else(|_| ".".to_string());
        let path = std::path::Path::new(&dir).join(format!("BENCH_{suite}.json"));
        std::fs::write(&path, self.to_json(suite))?;
        Ok(path)
    }

    /// [`Bench::write_json`] plus a one-line confirmation on stdout —
    /// the standard last line of every bench binary.
    pub fn finish(&self, suite: &str) {
        match self.write_json(suite) {
            Ok(path) => println!("bench report written to {}", path.display()),
            Err(err) => eprintln!("bench report for {suite} not written: {err}"),
        }
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a duration with a unit fitting its magnitude.
#[must_use]
pub fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} us", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench() -> Bench {
        Bench {
            samples: 5,
            warmup: Duration::from_millis(1),
            records: Vec::new(),
        }
    }

    #[test]
    fn measure_runs_and_reports() {
        let mut bench = tiny_bench();
        let median = bench.measure("test/busy", || {
            black_box((0u64..100).sum::<u64>());
        });
        assert!(median < Duration::from_secs(1));
        assert_eq!(bench.records().len(), 1);
        assert_eq!(bench.records()[0].name, "test/busy");
        assert!(bench.records()[0].median_ns > 0);
    }

    #[test]
    fn record_single_reports_one_observation() {
        let mut bench = tiny_bench();
        bench.record_single("test/slow", Duration::from_millis(1500));
        let r = &bench.records()[0];
        assert_eq!(r.name, "test/slow");
        assert_eq!(r.median_ns, 1_500_000_000);
        assert_eq!(r.p95_ns, r.median_ns);
        assert_eq!(r.min_ns, r.median_ns);
        assert_eq!((r.samples, r.batch), (1, 1));
    }

    #[test]
    fn json_report_is_well_formed() {
        let mut bench = tiny_bench();
        bench.measure("suite/one", || {
            black_box(1u64 + 1);
        });
        bench.measure("suite/\"two\"", || {
            black_box(2u64 + 2);
        });
        let json = bench.to_json("unit");
        assert!(json.contains("\"suite\": \"unit\""));
        assert!(json.contains("\"name\": \"suite/one\""));
        assert!(json.contains("suite/\\\"two\\\""), "{json}");
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_suite_still_renders() {
        let bench = tiny_bench();
        let json = bench.to_json("empty");
        assert!(json.contains("\"records\": [\n  ]"));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(format_duration(Duration::from_micros(12)), "12.00 us");
        assert_eq!(format_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.00 s");
    }
}
