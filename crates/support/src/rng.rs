//! Seeded pseudo-random number generation.
//!
//! [`SplitMix`] is the SplitMix64 generator (Steele, Lea & Flood 2014)
//! that used to live as a private struct in `sl-buchi::random`. It is
//! promoted here verbatim so that every crate shares one implementation
//! and previously recorded seeds keep producing bit-identical streams:
//! `SplitMix::new(seed)` yields exactly the sequence the old
//! `buchi::random::SplitMix(seed)` did.

/// The SplitMix64 increment ("golden gamma"). Exposed so call sites that
/// historically pre-advanced their state (e.g. `sl-lattice`'s
/// `random_closure`, which seeded with `seed + GOLDEN_GAMMA`) can
/// reproduce their exact historical streams through [`SplitMix::new`].
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// A SplitMix64 pseudo-random generator: tiny, fast, and deterministic
/// in the seed. Not cryptographic; used for test corpora and benchmark
/// inputs only.
///
/// # Examples
///
/// ```
/// use sl_support::rng::SplitMix;
///
/// let mut a = SplitMix::new(7);
/// let mut b = SplitMix::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix(u64);

impl SplitMix {
    /// Creates a generator from a seed. Equal seeds give equal streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix(seed)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A draw in `0..100`, for percentage checks.
    pub fn percent(&mut self) -> u32 {
        (self.next_u64() % 100) as u32
    }

    /// Whether a `percent`-likely event fired.
    pub fn chance(&mut self, percent: u32) -> bool {
        self.percent() < percent
    }

    /// A draw in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` — sampling from an empty range is always a
    /// caller bug, and the message names it instead of surfacing as an
    /// opaque "remainder with a divisor of zero".
    pub fn below(&mut self, n: usize) -> usize {
        assert!(
            n > 0,
            "SplitMix::below(0): cannot sample from the empty range 0..0"
        );
        (self.next_u64() % n as u64) as usize
    }

    /// A draw in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn in_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "SplitMix::in_range: empty range {lo}..{hi}");
        lo + self.next_u64() % (hi - lo)
    }

    /// A fair coin flip.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = SplitMix::new(42);
        let mut b = SplitMix::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix::new(43);
        assert_ne!(SplitMix::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = SplitMix::new(1);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
            let v = rng.in_range(3, 9);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "cannot sample from the empty range")]
    fn below_zero_panics_with_clear_message() {
        let mut rng = SplitMix::new(1);
        let _ = rng.below(0);
    }

    #[test]
    #[should_panic(expected = "empty range 5..5")]
    fn empty_range_panics() {
        let mut rng = SplitMix::new(1);
        let _ = rng.in_range(5, 5);
    }

    #[test]
    fn known_first_draws() {
        // Anchors the stream so accidental algorithm changes are loud:
        // these are the canonical SplitMix64 outputs for seed 0.
        let mut rng = SplitMix::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }
}
