//! A minimal property-based testing harness.
//!
//! This replaces the `proptest` dependency for the workspace's needs:
//! composable [`Strategy`] values generate seeded pseudo-random inputs,
//! a [`check`] runner drives a configurable number of cases, failures
//! are greedily shrunk toward minimal counterexamples, and the report
//! names the seed so a failure replays exactly.
//!
//! Configuration comes from the environment:
//!
//! * `SL_PROP_CASES` — cases per property (default 64);
//! * `SL_PROP_SEED` — base seed (default 0; decimal or `0x…` hex). A
//!   failing run prints the seed to copy back.
//!
//! ```
//! use sl_support::prop::{self, Strategy, StrategyExt};
//!
//! let evens = (0u64..1000).prop_map(|n| n * 2);
//! prop::check("doubles are even", &evens, |&n| {
//!     sl_support::prop_assert!(n % 2 == 0, "odd double {n}");
//!     Ok(())
//! });
//! ```

use crate::rng::{SplitMix, GOLDEN_GAMMA};
use std::cell::RefCell;
use std::fmt::Debug;
use std::ops::Range;
use std::rc::Rc;

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

/// A generator of pseudo-random values plus a shrinker for minimizing
/// counterexamples. Strategies compose through [`StrategyExt`], tuples,
/// [`one_of`], [`vec_of`], and [`recursive`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut SplitMix) -> Self::Value;

    /// Proposes strictly "smaller" variants of a value for greedy
    /// shrinking. The default proposes nothing (no shrinking).
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

/// A shared, type-erased strategy — the currency of recursive and
/// alternative ([`one_of`]) strategies.
pub type SBox<T> = Rc<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Rc<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut SplitMix) -> Self::Value {
        (**self).generate(rng)
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut SplitMix) -> Self::Value {
        (**self).generate(rng)
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

/// Combinator methods available on every strategy.
pub trait StrategyExt: Strategy + Sized {
    /// Transforms generated values. The transformation is not
    /// invertible in general, so the mapped strategy remembers the
    /// inputs it generated (bounded memory) and shrinks a value by
    /// shrinking the input it came from and re-mapping.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F> {
        Map {
            inner: self,
            f,
            memory: RefCell::new(Vec::new()),
        }
    }

    /// Erases the concrete type into a shareable [`SBox`].
    fn boxed(self) -> SBox<Self::Value>
    where
        Self: 'static,
    {
        Rc::new(self)
    }
}

impl<S: Strategy> StrategyExt for S {}

/// Bound on how many generated inputs a [`Map`] remembers for
/// preimage lookup during shrinking.
const MAP_MEMORY_CAP: usize = 256;

/// See [`StrategyExt::prop_map`].
pub struct Map<S: Strategy, F> {
    inner: S,
    f: F,
    // Recently generated / proposed inputs, newest last. `shrink`
    // recovers the preimage of a value by image equality, so shrinking
    // composes through the (non-invertible) transformation.
    memory: RefCell<Vec<S::Value>>,
}

impl<S: Strategy, F> Map<S, F> {
    fn remember(&self, input: S::Value) {
        let mut memory = self.memory.borrow_mut();
        if memory.len() == MAP_MEMORY_CAP {
            memory.remove(0);
        }
        memory.push(input);
    }
}

impl<S: Strategy, U: PartialEq, F: Fn(S::Value) -> U> Strategy for Map<S, F>
where
    S::Value: Clone,
{
    type Value = U;
    fn generate(&self, rng: &mut SplitMix) -> U {
        let input = self.inner.generate(rng);
        let out = (self.f)(input.clone());
        self.remember(input);
        out
    }
    fn shrink(&self, value: &U) -> Vec<U> {
        // Newest match wins: the value currently being shrunk is the
        // most recently generated or proposed one with that image.
        let input = {
            let memory = self.memory.borrow();
            match memory.iter().rev().find(|i| (self.f)((*i).clone()) == *value) {
                Some(input) => input.clone(),
                None => return Vec::new(), // not generated here
            }
        };
        let candidates = self.inner.shrink(&input);
        let out = candidates.iter().map(|i| (self.f)(i.clone())).collect();
        for candidate in candidates {
            self.remember(candidate);
        }
        out
    }
}

/// Always produces a clone of the given value.
#[must_use]
pub fn just<T: Clone>(value: T) -> Just<T> {
    Just(value)
}

/// See [`just`].
pub struct Just<T>(T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SplitMix) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SplitMix) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_u64() % (self.end - self.start) as u64) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let mut out = Vec::new();
                let v = *value;
                if v > self.start {
                    out.push(self.start); // jump to the minimum
                    let mid = self.start + (v - self.start) / 2;
                    if mid != self.start && mid != v {
                        out.push(mid); // halve the distance
                    }
                    out.push(v - 1); // decrement
                }
                out.dedup();
                out
            }
        }
    )*};
}

int_range_strategy!(u16, u32, u64, usize);

/// Fair booleans, shrinking toward `false`.
#[must_use]
pub fn bools() -> Bools {
    Bools
}

/// See [`bools`].
pub struct Bools;

impl Strategy for Bools {
    type Value = bool;
    fn generate(&self, rng: &mut SplitMix) -> bool {
        rng.flip()
    }
    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// Picks uniformly among the given values, shrinking toward earlier
/// entries (list the simplest values first).
#[must_use]
pub fn sample<T: Clone + PartialEq>(values: Vec<T>) -> Sample<T> {
    assert!(!values.is_empty(), "sample requires at least one value");
    Sample(values)
}

/// See [`sample`].
pub struct Sample<T>(Vec<T>);

impl<T: Clone + PartialEq> Strategy for Sample<T> {
    type Value = T;
    fn generate(&self, rng: &mut SplitMix) -> T {
        self.0[rng.below(self.0.len())].clone()
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        match self.0.iter().position(|v| v == value) {
            Some(i) => self.0[..i].to_vec(),
            None => Vec::new(),
        }
    }
}

/// Picks uniformly among the given strategies.
#[must_use]
pub fn one_of<T>(options: Vec<SBox<T>>) -> OneOf<T> {
    assert!(!options.is_empty(), "one_of requires at least one option");
    OneOf(options)
}

/// See [`one_of`].
pub struct OneOf<T>(Vec<SBox<T>>);

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut SplitMix) -> T {
        self.0[rng.below(self.0.len())].generate(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        // The generating alternative is unknown; offer every option's
        // proposals (wrong-option proposals are just rejected by the
        // greedy loop if they don't keep the property failing).
        self.0.iter().flat_map(|s| s.shrink(value)).collect()
    }
}

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*)
        where
            $($name::Value: Clone,)*
        {
            type Value = ($($name::Value,)*);
            fn generate(&self, rng: &mut SplitMix) -> Self::Value {
                ($(self.$idx.generate(rng),)*)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )*
                out
            }
        }
    };
}

tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Vectors of `elem` values with a length drawn from `len`. Shrinks by
/// dropping elements (down to the minimum length) and by shrinking
/// individual elements.
#[must_use]
pub fn vec_of<S: Strategy>(elem: S, len: Range<usize>) -> VecOf<S> {
    assert!(len.start < len.end, "empty length range");
    VecOf { elem, len }
}

/// See [`vec_of`].
pub struct VecOf<S> {
    elem: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecOf<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut SplitMix) -> Vec<S::Value> {
        let n = self.len.generate(rng);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        if value.len() > self.len.start {
            for i in 0..value.len() {
                let mut shorter = value.clone();
                shorter.remove(i);
                out.push(shorter);
            }
        }
        for (i, v) in value.iter().enumerate() {
            for candidate in self.elem.shrink(v) {
                let mut next = value.clone();
                next[i] = candidate;
                out.push(next);
            }
        }
        out
    }
}

/// Recursive structures: level 0 draws from `leaf`; each further level
/// draws either a leaf or one application of `branch` to the previous
/// level (50/50), up to `depth` applications. This is the replacement
/// for `proptest`'s `prop_recursive`.
#[must_use]
pub fn recursive<T: 'static>(
    leaf: SBox<T>,
    depth: usize,
    branch: impl Fn(SBox<T>) -> SBox<T>,
) -> SBox<T> {
    let mut current = leaf.clone();
    for _ in 0..depth {
        current = one_of(vec![leaf.clone(), branch(current)]).boxed();
    }
    current
}

// ---------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------

/// Runner configuration, read from `SL_PROP_CASES` / `SL_PROP_SEED`.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Cases generated per property.
    pub cases: u32,
    /// Base seed; every (property, case) pair derives its own stream.
    pub seed: u64,
}

impl Config {
    /// Reads the configuration from the environment, with defaults of
    /// 64 cases and seed 0.
    #[must_use]
    pub fn from_env() -> Self {
        let cases = std::env::var("SL_PROP_CASES")
            .ok()
            .and_then(|raw| raw.trim().parse::<u32>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(64);
        let seed = std::env::var("SL_PROP_SEED")
            .ok()
            .and_then(|raw| {
                let raw = raw.trim();
                match raw.strip_prefix("0x") {
                    Some(hex) => u64::from_str_radix(hex, 16).ok(),
                    None => raw.parse::<u64>().ok(),
                }
            })
            .unwrap_or(0);
        Config { cases, seed }
    }
}

fn fnv1a(text: &str) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The derived seed for one (base seed, property name, case index)
/// triple. [`case_rng`] is `SplitMix::new` of this value; failure
/// reports print it so a single case replays in isolation.
#[must_use]
pub fn case_seed(seed: u64, name: &str, case: u32) -> u64 {
    seed ^ fnv1a(name) ^ u64::from(case).wrapping_mul(GOLDEN_GAMMA)
}

/// The per-case generator stream: deterministic in (base seed, property
/// name, case index), so one failing case replays without re-running
/// the cases before it.
#[must_use]
pub fn case_rng(seed: u64, name: &str, case: u32) -> SplitMix {
    SplitMix::new(case_seed(seed, name, case))
}

/// Everything a failure report needs to point at the exact failing
/// case: passed to the repro-command formatter of [`check_with_repro`].
#[derive(Debug, Clone, Copy)]
pub struct Repro<'a> {
    /// The property name given to the runner.
    pub name: &'a str,
    /// The base seed (`SL_PROP_SEED`).
    pub seed: u64,
    /// The index of the failing case.
    pub case: u32,
    /// The derived per-case seed ([`case_seed`]).
    pub case_seed: u64,
}

/// Upper bound on shrink-candidate evaluations per failure, so a cyclic
/// shrinker cannot hang the suite.
const MAX_SHRINK_EVALS: usize = 4096;

/// Checks `property` on [`Config::from_env`]-many generated cases.
///
/// On the first failing case the counterexample is greedily shrunk:
/// every round tries the strategy's candidates in order and restarts
/// from the first one that still fails, until no candidate fails (a
/// local minimum) or the evaluation budget runs out.
///
/// # Panics
///
/// Panics (failing the enclosing test) with the property name, the
/// case index, the seed to replay, and the original plus shrunk
/// counterexamples if any case fails.
pub fn check<S: Strategy>(
    name: &str,
    strategy: &S,
    property: impl Fn(&S::Value) -> Result<(), String>,
) where
    S::Value: Debug + Clone,
{
    check_with_repro(name, strategy, property, |repro| {
        format!(
            "SL_PROP_SEED={} SL_PROP_CASES={} cargo test -q  # property `{}`",
            repro.seed,
            repro.case + 1,
            repro.name,
        )
    });
}

/// Like [`check`], but a failure report ends with a caller-supplied
/// one-line reproduction command built from the failing [`Repro`]
/// coordinates (e.g. `slfuzz --seed N --oracle X --case C` for the
/// conformance fuzzer).
pub fn check_with_repro<S: Strategy>(
    name: &str,
    strategy: &S,
    property: impl Fn(&S::Value) -> Result<(), String>,
    repro_command: impl Fn(Repro<'_>) -> String,
) where
    S::Value: Debug + Clone,
{
    let config = Config::from_env();
    for case in 0..config.cases {
        let mut rng = case_rng(config.seed, name, case);
        let value = strategy.generate(&mut rng);
        if let Err(message) = property(&value) {
            let (shrunk, shrunk_message, steps) =
                minimize(strategy, &property, &value, &message);
            let repro = repro_command(Repro {
                name,
                seed: config.seed,
                case,
                case_seed: case_seed(config.seed, name, case),
            });
            panic!(
                "property `{name}` falsified (case {case}/{cases}, SL_PROP_SEED={seed}):\n  \
                 case seed: {case_seed:#018x}\n  \
                 repro: {repro}\n  \
                 original: {value:?}\n  \
                 original failure: {message}\n  \
                 shrunk ({steps} steps): {shrunk:?}\n  \
                 shrunk failure: {shrunk_message}",
                cases = config.cases,
                seed = config.seed,
                case_seed = case_seed(config.seed, name, case),
            );
        }
    }
}

/// Greedily shrinks a failing value: every round tries the strategy's
/// candidates in order and restarts from the first one that still
/// fails, until no candidate fails (a local minimum) or the
/// [`MAX_SHRINK_EVALS`] budget runs out. Returns the minimized value,
/// its failure message, and the number of successful shrink steps.
///
/// Public so external harnesses (the `slfuzz` conformance fuzzer) can
/// reuse the shrink loop with their own case strategies.
pub fn minimize<S: Strategy>(
    strategy: &S,
    property: &impl Fn(&S::Value) -> Result<(), String>,
    original: &S::Value,
    original_message: &str,
) -> (S::Value, String, usize)
where
    S::Value: Clone,
{
    let mut current = original.clone();
    let mut current_message = original_message.to_string();
    let mut evals = 0usize;
    let mut steps = 0usize;
    'outer: loop {
        for candidate in strategy.shrink(&current) {
            evals += 1;
            if evals > MAX_SHRINK_EVALS {
                break 'outer;
            }
            if let Err(message) = property(&candidate) {
                current = candidate;
                current_message = message;
                steps += 1;
                continue 'outer;
            }
        }
        break; // local minimum: no candidate still fails
    }
    (current, current_message, steps)
}

// ---------------------------------------------------------------------
// Assertion macros
// ---------------------------------------------------------------------

/// Asserts a condition inside a property, returning `Err` with the
/// formatted message instead of panicking (so the runner can shrink).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a property (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Asserts inequality inside a property (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        check("sum is commutative", &(0u64..100, 0u64..100), |&(a, b)| {
            crate::prop_assert_eq!(a + b, b + a);
            Ok(())
        });
    }

    #[test]
    #[should_panic(expected = "property `always fails` falsified")]
    fn failing_property_reports() {
        check("always fails", &(0u64..100), |_| Err("nope".to_string()));
    }

    #[test]
    fn shrinking_minimizes_ranges() {
        // The property "n < 40" fails from 40 up; the shrinker must
        // land exactly on 40.
        let strategy = 0u64..1000;
        let mut failure: Option<u64> = None;
        for case in 0..200 {
            let mut rng = case_rng(0, "shrink probe", case);
            let v = strategy.generate(&mut rng);
            if v >= 40 {
                failure = Some(v);
                break;
            }
        }
        let original = failure.expect("some case exceeds 40");
        let prop = |&n: &u64| -> Result<(), String> {
            if n >= 40 {
                Err(format!("{n} too big"))
            } else {
                Ok(())
            }
        };
        let (shrunk, _, _) = minimize(&strategy, &prop, &original, "seed");
        assert_eq!(shrunk, 40);
    }

    #[test]
    fn vectors_shrink_by_dropping() {
        let strategy = vec_of(0u64..10, 0..8);
        let original = vec![3, 9, 1, 9, 2];
        // Fails whenever a 9 is present; minimal counterexample: [9].
        let prop = |v: &Vec<u64>| -> Result<(), String> {
            if v.contains(&9) {
                Err("contains 9".into())
            } else {
                Ok(())
            }
        };
        let (shrunk, _, _) = minimize(&strategy, &prop, &original, "seed");
        assert_eq!(shrunk, vec![9]);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone, PartialEq)]
        enum Expr {
            Lit(u64),
            Neg(Box<Expr>),
            Add(Box<Expr>, Box<Expr>),
        }
        fn depth(e: &Expr) -> usize {
            match e {
                Expr::Lit(_) => 0,
                Expr::Neg(a) => 1 + depth(a),
                Expr::Add(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (0u64..10).prop_map(Expr::Lit).boxed();
        let strategy = recursive(leaf, 4, |inner| {
            one_of(vec![
                inner.clone().prop_map(|e| Expr::Neg(Box::new(e))).boxed(),
                (inner.clone(), inner)
                    .prop_map(|(a, b)| Expr::Add(Box::new(a), Box::new(b)))
                    .boxed(),
            ])
            .boxed()
        });
        let mut rng = SplitMix::new(99);
        for _ in 0..200 {
            let e = strategy.generate(&mut rng);
            assert!(depth(&e) <= 4, "{e:?}");
        }
    }

    #[test]
    fn mapped_strategies_shrink_through_the_map() {
        // "double < 80" fails from 40 up; the shrinker must recover the
        // preimage and land exactly on 80 despite the map.
        let strategy = (0u64..1000).prop_map(|n| n * 2);
        let mut rng = SplitMix::new(3);
        let original = std::iter::repeat_with(|| strategy.generate(&mut rng))
            .find(|&v| v >= 80)
            .unwrap();
        let prop = |&n: &u64| -> Result<(), String> {
            if n >= 80 {
                Err(format!("{n} too big"))
            } else {
                Ok(())
            }
        };
        let (shrunk, _, steps) = minimize(&strategy, &prop, &original, "seed");
        assert_eq!(shrunk, 80);
        assert!(steps > 0 || original == 80);
    }

    #[test]
    fn recursive_mapped_strategies_shrink_their_leaves() {
        // Formula-shaped counterexamples shrink too: every literal in
        // the shrunk value is minimized through the nested maps. (The
        // shrinker minimizes leaves, not tree depth — replacing
        // `Neg(e)` by `e` would need tree-based shrinking.)
        #[derive(Debug, Clone, PartialEq)]
        enum Expr {
            Lit(u64),
            Neg(Box<Expr>),
        }
        fn has_neg(e: &Expr) -> bool {
            matches!(e, Expr::Neg(_))
        }
        fn literals_all_zero(e: &Expr) -> bool {
            match e {
                Expr::Lit(n) => *n == 0,
                Expr::Neg(a) => literals_all_zero(a),
            }
        }
        let leaf = (0u64..10).prop_map(Expr::Lit).boxed();
        let strategy = recursive(leaf, 3, |inner| {
            inner.prop_map(|e| Expr::Neg(Box::new(e))).boxed()
        });
        let prop = |e: &Expr| -> Result<(), String> {
            if has_neg(e) {
                Err("has a negation".into())
            } else {
                Ok(())
            }
        };
        let mut rng = SplitMix::new(5);
        let original = std::iter::repeat_with(|| strategy.generate(&mut rng))
            .find(|e| has_neg(e) && !literals_all_zero(e))
            .unwrap();
        let (shrunk, _, _) = minimize(&strategy, &prop, &original, "seed");
        assert!(has_neg(&shrunk), "shrunk value must still fail: {shrunk:?}");
        assert!(
            literals_all_zero(&shrunk),
            "literals not minimized: {shrunk:?}"
        );
    }

    #[test]
    fn sample_shrinks_to_earlier_entries() {
        let s = sample(vec!['a', 'b', 'c']);
        assert_eq!(s.shrink(&'c'), vec!['a', 'b']);
        assert!(s.shrink(&'a').is_empty());
    }

    #[test]
    fn config_defaults() {
        // Only checks the defaults when the env vars are unset; under
        // an overridden environment the parse paths are still covered
        // by from_env.
        let config = Config::from_env();
        assert!(config.cases > 0);
    }
}
