//! # sl-support
//!
//! The workspace's zero-dependency support toolkit. Everything that the
//! crates used to pull from crates.io (`rand`, `proptest`, `criterion`)
//! lives here instead, so the whole workspace builds and tests with no
//! registry access at all:
//!
//! * [`rng`] — the SplitMix64 generator previously private to
//!   `sl-buchi::random`, promoted so every crate draws from the same
//!   seeded, bit-stable streams.
//! * [`prop`] — a minimal property-testing harness: seeded case
//!   generation, composable strategies, greedy shrinking, and
//!   failure-seed reporting (`SL_PROP_CASES` / `SL_PROP_SEED`).
//! * [`bench`] — a wall-clock timing harness (warmup, calibrated
//!   batches, median/p95 report) backing `crates/bench/benches/`.
//! * [`par`] — scoped-thread chunked parallel sweeps with
//!   deterministic result ordering (`SL_THREADS` to pin the width) and
//!   panic-isolated fault-tolerant variants ([`par::try_par_map`]).
//!
//! The fault-tolerant execution layer lives here too:
//!
//! * [`error`] — the workspace-wide [`SlError`] taxonomy with context
//!   chains, absorbing the domain errors of every crate.
//! * [`budget`] — [`Budget`]/[`BudgetMeter`]: step limits, wall-clock
//!   deadlines, and cooperative cancellation ([`CancelFlag`]) shared by
//!   every `*_with_budget` entry point in the workspace.
//! * [`fault`] — deterministic seeded fault injection
//!   ([`fault::FaultPlan`], env-configured via `SL_FAULT_SEED` /
//!   `SL_FAULT_RATE`) proving the degradation paths.
//!
//! Everything here is plain `std`; there are no feature flags and no
//! transitive dependencies.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod bench;
pub mod budget;
pub mod error;
pub mod fault;
pub mod par;
pub mod prop;
pub mod rng;

pub use budget::{Budget, BudgetMeter, CancelFlag};
pub use error::SlError;
pub use fault::FaultPlan;
pub use par::{ItemOutcome, SweepReport};
pub use rng::SplitMix;
