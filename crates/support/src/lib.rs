//! # sl-support
//!
//! The workspace's zero-dependency support toolkit. Everything that the
//! crates used to pull from crates.io (`rand`, `proptest`, `criterion`)
//! lives here instead, so the whole workspace builds and tests with no
//! registry access at all:
//!
//! * [`rng`] — the SplitMix64 generator previously private to
//!   `sl-buchi::random`, promoted so every crate draws from the same
//!   seeded, bit-stable streams.
//! * [`prop`] — a minimal property-testing harness: seeded case
//!   generation, composable strategies, greedy shrinking, and
//!   failure-seed reporting (`SL_PROP_CASES` / `SL_PROP_SEED`).
//! * [`bench`] — a wall-clock timing harness (warmup, calibrated
//!   batches, median/p95 report) backing `crates/bench/benches/`.
//! * [`par`] — scoped-thread chunked parallel sweeps with
//!   deterministic result ordering (`SL_THREADS` to pin the width).
//!
//! Everything here is plain `std`; there are no feature flags and no
//! transitive dependencies.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod bench;
pub mod par;
pub mod prop;
pub mod rng;

pub use rng::SplitMix;
