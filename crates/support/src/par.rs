//! Scoped-thread parallel sweeps with deterministic result ordering.
//!
//! The exhaustive theorem verifiers (E4's closure enumeration, E10's
//! corpus sweep, the property corpora) are embarrassingly parallel:
//! independent work items whose results are folded afterwards. These
//! helpers split the items into contiguous chunks, run one
//! `std::thread::scope` worker per chunk, and write each result into
//! its item's slot — so `par_map(items, f)` returns exactly
//! `items.iter().map(f).collect()` regardless of thread count, and any
//! fold over the results is bit-identical to the sequential run.
//!
//! The worker count comes from the `SL_THREADS` environment variable
//! when set (a positive integer; `SL_THREADS=1` forces sequential
//! execution), otherwise from `std::thread::available_parallelism`.
//!
//! ## Panic isolation
//!
//! [`par_map`] propagates worker panics — one poisoned item aborts the
//! whole sweep. The fault-tolerant variants ([`try_par_map`],
//! [`par_map_isolated`]) instead wrap each chunk in
//! [`std::panic::catch_unwind`]; when a chunk panics, it is retried
//! sequentially item by item to pinpoint the offender, and every item's
//! fate is recorded in a [`SweepReport`] (ok / panicked / failed with a
//! typed [`SlError`]). Surviving results are bit-identical to what the
//! plain sweep would have produced for those items, at any thread
//! count. The `"par.worker"` fault-injection site
//! ([`crate::fault::global`]) fires inside the isolation boundary, so
//! seeded fault drills exercise exactly this degradation path.

use crate::error::SlError;
use crate::fault;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The number of worker threads sweeps use: `SL_THREADS` if set to a
/// positive integer, otherwise the machine's available parallelism.
#[must_use]
pub fn thread_count() -> usize {
    if let Ok(raw) = std::env::var("SL_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Applies `f` to every item, in parallel across [`thread_count`]
/// workers, returning results in item order (identical to the
/// sequential `items.iter().map(f).collect()`).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(thread_count(), items, f)
}

/// [`par_map`] with an explicit worker count (used by the determinism
/// tests to compare widths directly).
pub fn par_map_with<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let f = &f;
    std::thread::scope(|scope| {
        for (item_chunk, slot_chunk) in items.chunks(chunk).zip(slots.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (item, slot) in item_chunk.iter().zip(slot_chunk.iter_mut()) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every slot is filled by its chunk's worker"))
        .collect()
}

/// The fate of one item in a fault-tolerant sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemOutcome<R> {
    /// The item completed; the result equals the sequential `f(item)`.
    Ok(R),
    /// The item's closure panicked; the panic was caught and the
    /// payload rendered (injected panics carry the `sl-fault:` prefix).
    Panicked(String),
    /// The item's closure returned a typed error.
    Failed(SlError),
}

impl<R> ItemOutcome<R> {
    /// Whether the item completed normally.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        matches!(self, ItemOutcome::Ok(_))
    }

    /// The result, if the item completed.
    #[must_use]
    pub fn ok(&self) -> Option<&R> {
        match self {
            ItemOutcome::Ok(r) => Some(r),
            _ => None,
        }
    }
}

/// Per-item outcomes of a fault-tolerant sweep, in item order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepReport<R> {
    /// `outcomes[i]` is the fate of `items[i]`.
    pub outcomes: Vec<ItemOutcome<R>>,
}

impl<R> SweepReport<R> {
    /// Total number of items swept.
    #[must_use]
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether the sweep had no items.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Items that completed normally.
    #[must_use]
    pub fn ok_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_ok()).count()
    }

    /// Items whose closure panicked (caught and isolated).
    #[must_use]
    pub fn panicked_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, ItemOutcome::Panicked(_)))
            .count()
    }

    /// Items whose closure returned a typed error.
    #[must_use]
    pub fn failed_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, ItemOutcome::Failed(_)))
            .count()
    }

    /// Whether any item did not complete normally.
    #[must_use]
    pub fn degraded(&self) -> bool {
        self.ok_count() != self.len()
    }

    /// `(index, result)` for every item that completed, in item order.
    pub fn oks(&self) -> impl Iterator<Item = (usize, &R)> {
        self.outcomes
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.ok().map(|r| (i, r)))
    }

    /// Indices of items that did not complete, in item order.
    #[must_use]
    pub fn failure_indices(&self) -> Vec<usize> {
        self.outcomes
            .iter()
            .enumerate()
            .filter(|(_, o)| !o.is_ok())
            .map(|(i, _)| i)
            .collect()
    }

    /// All results when nothing failed, or the report itself (`Err`)
    /// when degraded — the bridge back to the strict sweep shape.
    ///
    /// # Errors
    ///
    /// Returns `self` unchanged when any item panicked or failed.
    pub fn into_oks(self) -> Result<Vec<R>, SweepReport<R>> {
        if self.degraded() {
            return Err(self);
        }
        Ok(self
            .outcomes
            .into_iter()
            .map(|o| match o {
                ItemOutcome::Ok(r) => r,
                _ => unreachable!("degraded() was false"),
            })
            .collect())
    }

    /// One-line human summary, e.g. `38/40 ok, 2 panicked, 0 failed`.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{}/{} ok, {} panicked, {} failed",
            self.ok_count(),
            self.len(),
            self.panicked_count(),
            self.failed_count()
        )
    }
}

/// Renders a caught panic payload (the `&str`/`String` shapes `panic!`
/// produces; anything else becomes a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Fault-tolerant sweep: applies the fallible `f` to every item in
/// parallel, catching per-item panics and recording every outcome in a
/// [`SweepReport`] (item order, deterministic at any thread count for
/// deterministic `f`). The `"par.worker"` fault site fires inside the
/// isolation boundary with the item's index.
pub fn try_par_map<T, R, F>(items: &[T], f: F) -> SweepReport<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> Result<R, SlError> + Sync,
{
    try_par_map_with(thread_count(), items, f)
}

/// [`try_par_map`] with an explicit worker count.
pub fn try_par_map_with<T, R, F>(threads: usize, items: &[T], f: F) -> SweepReport<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> Result<R, SlError> + Sync,
{
    let plan = fault::global();
    // The per-item closure, fault site included: this is the unit the
    // isolation boundary wraps, so injected panics are caught exactly
    // like organic ones.
    let run_item = |index: usize, item: &T| -> Result<R, SlError> {
        plan.inject_panic("par.worker", index as u64);
        f(item)
    };
    let run_item = &run_item;

    if items.is_empty() {
        return SweepReport {
            outcomes: Vec::new(),
        };
    }
    let sweep_chunk = |base: usize, chunk: &[T], slots: &mut [Option<ItemOutcome<R>>]| {
        // Fast path: run the whole chunk inside one unwind boundary.
        // On a panic, partially-written slots are discarded and the
        // chunk is retried sequentially, one boundary per item, to
        // pinpoint the offender (f is deterministic, so recomputing
        // the survivors reproduces their results bit-for-bit).
        let whole = catch_unwind(AssertUnwindSafe(|| {
            for (offset, (item, slot)) in chunk.iter().zip(slots.iter_mut()).enumerate() {
                *slot = Some(match run_item(base + offset, item) {
                    Ok(r) => ItemOutcome::Ok(r),
                    Err(e) => ItemOutcome::Failed(e),
                });
            }
        }));
        if whole.is_ok() {
            return;
        }
        for (offset, (item, slot)) in chunk.iter().zip(slots.iter_mut()).enumerate() {
            *slot = Some(
                match catch_unwind(AssertUnwindSafe(|| run_item(base + offset, item))) {
                    Ok(Ok(r)) => ItemOutcome::Ok(r),
                    Ok(Err(e)) => ItemOutcome::Failed(e),
                    Err(payload) => ItemOutcome::Panicked(panic_message(payload.as_ref())),
                },
            );
        }
    };

    let mut slots: Vec<Option<ItemOutcome<R>>> = (0..items.len()).map(|_| None).collect();
    if threads <= 1 || items.len() <= 1 {
        sweep_chunk(0, items, &mut slots);
    } else {
        let chunk = items.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (chunk_index, (item_chunk, slot_chunk)) in
                items.chunks(chunk).zip(slots.chunks_mut(chunk)).enumerate()
            {
                let sweep_chunk = &sweep_chunk;
                scope.spawn(move || sweep_chunk(chunk_index * chunk, item_chunk, slot_chunk));
            }
        });
    }
    SweepReport {
        outcomes: slots
            .into_iter()
            .map(|slot| slot.expect("every slot is filled by its chunk's worker"))
            .collect(),
    }
}

/// Panic-isolating sweep over an infallible closure: like [`par_map`],
/// but a panicking item degrades to a [`SweepReport`] entry instead of
/// aborting the process.
pub fn par_map_isolated<T, R, F>(items: &[T], f: F) -> SweepReport<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    try_par_map(items, |item| Ok(f(item)))
}

/// [`par_map_isolated`] with an explicit worker count.
pub fn par_map_isolated_with<T, R, F>(threads: usize, items: &[T], f: F) -> SweepReport<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    try_par_map_with(threads, items, |item| Ok(f(item)))
}

/// Sweeps `f` over `0..n` in parallel, returning `[f(0), .., f(n-1)]`.
pub fn par_sweep<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_sweep_with(thread_count(), n, f)
}

/// [`par_sweep`] with an explicit worker count.
pub fn par_sweep_with<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let indices: Vec<usize> = (0..n).collect();
    par_map_with(threads, &indices, |&i| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let items: Vec<u64> = (0..997).collect();
        for threads in [1, 2, 3, 8, 64] {
            let out = par_map_with(threads, &items, |&x| x * x);
            let expected: Vec<u64> = items.iter().map(|&x| x * x).collect();
            assert_eq!(out, expected, "threads = {threads}");
        }
    }

    #[test]
    fn sweep_matches_sequential() {
        for threads in [1, 4, 7] {
            let out = par_sweep_with(threads, 100, |i| i as u64 + 1);
            assert_eq!(out, (1..=100).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn more_threads_than_items() {
        let out = par_map_with(16, &[1, 2, 3], |&x: &i32| -x);
        assert_eq!(out, vec![-1, -2, -3]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = par_map_with(4, &[], |x: &i32| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }

    /// Silences the default panic hook for the duration of a closure so
    /// deliberate panics don't spam test output. The hook is global, so
    /// tests using this helper serialize on a lock.
    fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
        use std::sync::Mutex;
        static HOOK_LOCK: Mutex<()> = Mutex::new(());
        let _guard = HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(hook);
        out
    }

    /// Item indices the environment fault drill (if any) poisons at the
    /// sweep's own `par.worker` site — tests that assert exact failure
    /// sets must account for these to stay green under `SL_FAULT_RATE`.
    fn env_poisoned(n: usize) -> Vec<usize> {
        let plan = fault::global();
        (0..n)
            .filter(|&i| plan.should_fault("par.worker", i as u64))
            .collect()
    }

    #[test]
    fn isolated_map_matches_plain_map_when_clean() {
        with_quiet_panics(|| {
            let items: Vec<u64> = (0..503).collect();
            let poisoned = env_poisoned(items.len());
            for threads in [1, 2, 8] {
                let report = par_map_isolated_with(threads, &items, |&x| x.wrapping_mul(x));
                assert_eq!(report.failure_indices(), poisoned, "threads = {threads}");
                // Every survivor is bit-identical to the sequential map.
                for (i, &r) in report.oks() {
                    assert_eq!(r, items[i].wrapping_mul(items[i]), "threads = {threads}");
                }
                if poisoned.is_empty() {
                    assert!(!report.degraded(), "threads = {threads}");
                    let out = report.into_oks().unwrap();
                    let expected: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x)).collect();
                    assert_eq!(out, expected, "threads = {threads}");
                }
            }
        });
    }

    #[test]
    fn single_panicking_item_is_isolated_and_pinpointed() {
        with_quiet_panics(|| {
            let items: Vec<u64> = (0..100).collect();
            let mut expected_failures = env_poisoned(items.len());
            if !expected_failures.contains(&37) {
                expected_failures.push(37);
                expected_failures.sort_unstable();
            }
            for threads in [1, 2, 8] {
                let report = par_map_isolated_with(threads, &items, |&x| {
                    assert!(x != 37, "poisoned item");
                    x + 1
                });
                assert_eq!(report.failure_indices(), expected_failures, "threads = {threads}");
                assert_eq!(report.panicked_count(), expected_failures.len());
                assert_eq!(report.ok_count(), items.len() - expected_failures.len());
                // Sibling results are bit-identical to the clean run.
                for (i, &r) in report.oks() {
                    assert_eq!(r, items[i] + 1);
                }
                match &report.outcomes[37] {
                    ItemOutcome::Panicked(message) => {
                        // The organic panic, unless the drill's injected
                        // one beat it to the same index.
                        assert!(
                            message.contains("poisoned item") || message.contains("sl-fault"),
                            "{message}"
                        );
                    }
                    other => panic!("expected a caught panic, got {other:?}"),
                }
            }
        });
    }

    #[test]
    fn typed_errors_are_recorded_not_thrown() {
        with_quiet_panics(|| {
            let items: Vec<u64> = (0..20).collect();
            let poisoned = env_poisoned(items.len());
            let report = try_par_map_with(4, &items, |&x| {
                if x % 7 == 3 {
                    Err(SlError::InvalidInput(format!("item {x}")))
                } else {
                    Ok(x)
                }
            });
            // Typed errors: items 3, 10, 17 — minus any the drill
            // poisoned first (an injected panic wins over the error).
            let expected_failed = [3usize, 10, 17]
                .iter()
                .filter(|i| !poisoned.contains(i))
                .count();
            assert_eq!(report.failed_count(), expected_failed);
            assert_eq!(report.panicked_count(), poisoned.len());
            if poisoned.is_empty() {
                assert_eq!(report.failure_indices(), vec![3, 10, 17]);
                assert!(report.summary().contains("17/20 ok"));
            }
        });
    }

    #[test]
    fn empty_isolated_sweep() {
        let report = par_map_isolated_with(4, &[], |x: &u64| *x);
        assert!(report.is_empty());
        assert!(!report.degraded());
    }
}
