//! Scoped-thread parallel sweeps with deterministic result ordering.
//!
//! The exhaustive theorem verifiers (E4's closure enumeration, E10's
//! corpus sweep, the property corpora) are embarrassingly parallel:
//! independent work items whose results are folded afterwards. These
//! helpers split the items into contiguous chunks, run one
//! `std::thread::scope` worker per chunk, and write each result into
//! its item's slot — so `par_map(items, f)` returns exactly
//! `items.iter().map(f).collect()` regardless of thread count, and any
//! fold over the results is bit-identical to the sequential run.
//!
//! The worker count comes from the `SL_THREADS` environment variable
//! when set (a positive integer; `SL_THREADS=1` forces sequential
//! execution), otherwise from `std::thread::available_parallelism`.

/// The number of worker threads sweeps use: `SL_THREADS` if set to a
/// positive integer, otherwise the machine's available parallelism.
#[must_use]
pub fn thread_count() -> usize {
    if let Ok(raw) = std::env::var("SL_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Applies `f` to every item, in parallel across [`thread_count`]
/// workers, returning results in item order (identical to the
/// sequential `items.iter().map(f).collect()`).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(thread_count(), items, f)
}

/// [`par_map`] with an explicit worker count (used by the determinism
/// tests to compare widths directly).
pub fn par_map_with<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let f = &f;
    std::thread::scope(|scope| {
        for (item_chunk, slot_chunk) in items.chunks(chunk).zip(slots.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (item, slot) in item_chunk.iter().zip(slot_chunk.iter_mut()) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every slot is filled by its chunk's worker"))
        .collect()
}

/// Sweeps `f` over `0..n` in parallel, returning `[f(0), .., f(n-1)]`.
pub fn par_sweep<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_sweep_with(thread_count(), n, f)
}

/// [`par_sweep`] with an explicit worker count.
pub fn par_sweep_with<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let indices: Vec<usize> = (0..n).collect();
    par_map_with(threads, &indices, |&i| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let items: Vec<u64> = (0..997).collect();
        for threads in [1, 2, 3, 8, 64] {
            let out = par_map_with(threads, &items, |&x| x * x);
            let expected: Vec<u64> = items.iter().map(|&x| x * x).collect();
            assert_eq!(out, expected, "threads = {threads}");
        }
    }

    #[test]
    fn sweep_matches_sequential() {
        for threads in [1, 4, 7] {
            let out = par_sweep_with(threads, 100, |i| i as u64 + 1);
            assert_eq!(out, (1..=100).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn more_threads_than_items() {
        let out = par_map_with(16, &[1, 2, 3], |&x: &i32| -x);
        assert_eq!(out, vec![-1, -2, -3]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = par_map_with(4, &[], |x: &i32| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }
}
