//! The branching-time closures `fcl` and `ncl` (Definitions 5 and 6),
//! with bounded membership checkers and absolute path-based refutations.
//!
//! The definitions quantify over all prefixes of a total tree and all
//! total extensions — neither is finitely enumerable, so the checkers
//! here are *bounded*: they test prefixes up to a depth, and search for
//! extensions among completions built from a caller-supplied family of
//! continuation trees (plus the tree itself). Refutations of `ncl`
//! membership for *universal path properties* `A φ` are absolute,
//! though: if a non-total prefix keeps an infinite path violating `φ`,
//! no extension whatsoever can land in the property (the path survives
//! into every extension).
//!
//! This is the substitution documented in DESIGN.md item 3: the paper's
//! Section 4.3 table is verified mechanically with the paper's own
//! witnesses plus exhaustive small-scope search.

use crate::ctl::Ctl;
use crate::finite::Node;
use crate::prefix::RegularPrefix;
use crate::regular::RegularTree;
use sl_ltl::Ltl;
use sl_support::{Budget, SlError};

/// A bounded refutation of closure membership: the prefix that could
/// not be extended into the property.
#[derive(Debug, Clone)]
pub struct Refutation {
    /// Depth of the unrolling where the stuck prefix lives.
    pub depth: usize,
    /// The cut paths defining the stuck prefix (empty = full
    /// truncation).
    pub cuts: Vec<Node>,
}

/// Bounded check of `y ∈ fcl.P`: for every full truncation of `y` up to
/// `max_depth`, some completion (by a tree from `continuations`, with
/// `width`-fold branching below the frontier, or `y` itself) satisfies
/// `property`.
///
/// `Ok(())` means membership *as far as the bounds see*; `Err` returns
/// the depth of a truncation for which no candidate extension worked —
/// a refutation relative to the candidate family.
///
/// # Errors
///
/// Returns the stuck truncation as a [`Refutation`].
pub fn fcl_contains_bounded(
    y: &RegularTree,
    property: &Ctl,
    max_depth: usize,
    continuations: &[RegularTree],
    width: usize,
) -> Result<(), Refutation> {
    try_fcl_contains_bounded(y, property, max_depth, continuations, width, &Budget::unlimited())
        .expect("unlimited budget cannot be exceeded")
}

/// [`fcl_contains_bounded`] under a cooperative [`Budget`]: each
/// graft-and-model-check of a candidate extension charges one step
/// (phase `"trees.fcl"`). The candidate count is `depths ×
/// continuations` and each check walks a product construction, so
/// untrusted bounds should come through here.
///
/// # Errors
///
/// [`SlError::BudgetExceeded`] / [`SlError::Cancelled`] from the
/// budget. The inner result is the bounded membership verdict.
pub fn try_fcl_contains_bounded(
    y: &RegularTree,
    property: &Ctl,
    max_depth: usize,
    continuations: &[RegularTree],
    width: usize,
    budget: &Budget,
) -> Result<Result<(), Refutation>, SlError> {
    let mut meter = budget.meter("trees.fcl");
    // If y itself is in P, every truncation extends to y: done.
    meter.charge(1)?;
    if y.satisfies(property) {
        return Ok(Ok(()));
    }
    for depth in 0..=max_depth {
        let mut found = false;
        for cont in continuations {
            meter.charge(1)?;
            if y.graft(depth, cont, width).satisfies(property) {
                found = true;
                break;
            }
        }
        if !found {
            return Ok(Err(Refutation {
                depth,
                cuts: Vec::new(),
            }));
        }
    }
    Ok(Ok(()))
}

/// All antichain cut-pattern prefixes of `y` up to `max_depth`:
/// nonempty subsets of unrolling paths with no ancestor pairs. Total
/// prefixes (no cuts) are excluded — `ncl` quantifies over `A_nt`.
#[must_use]
pub fn nontotal_prefixes(y: &RegularTree, max_depth: usize) -> Vec<RegularPrefix> {
    match try_nontotal_prefixes(y, max_depth, &Budget::unlimited()) {
        Ok(prefixes) => prefixes,
        Err(err) => panic!("{err}"),
    }
}

/// [`nontotal_prefixes`] with typed errors and a cooperative [`Budget`]
/// (phase `"trees.prefixes"`, one step per candidate subset): the
/// `2^paths` enumeration blows up fast, and malformed path tables
/// surface as [`SlError::Domain`] instead of panics.
///
/// # Errors
///
/// * [`SlError::InvalidInput`] when more than 16 unrolling paths would
///   make the subset enumeration intractable (lower `max_depth`);
/// * [`SlError::Domain`] if the tree's successor table is internally
///   inconsistent (an enumerated path leaves the tree);
/// * [`SlError::BudgetExceeded`] / [`SlError::Cancelled`] from the
///   budget.
pub fn try_nontotal_prefixes(
    y: &RegularTree,
    max_depth: usize,
    budget: &Budget,
) -> Result<Vec<RegularPrefix>, SlError> {
    let mut meter = budget.meter("trees.prefixes");
    // Enumerate the unrolling paths up to max_depth.
    let mut paths: Vec<Node> = vec![Vec::new()];
    let mut frontier: Vec<Node> = vec![Vec::new()];
    for _ in 0..max_depth {
        let mut next = Vec::new();
        for path in &frontier {
            let node = y.node_at(path).ok_or_else(|| SlError::Domain {
                domain: "trees",
                message: format!("enumerated path {path:?} leaves the tree"),
            })?;
            for i in 0..y.children(node).len() {
                let mut child = path.clone();
                child.push(i as u32);
                paths.push(child.clone());
                next.push(child);
            }
        }
        frontier = next;
    }
    // Subsets that form antichains, nonempty.
    let n = paths.len();
    if n > 16 {
        return Err(SlError::InvalidInput(format!(
            "too many unrolling paths ({n} > 16); lower max_depth"
        )));
    }
    let mut out = Vec::new();
    'subset: for mask in 1u32..(1u32 << n) {
        meter.charge(1)?;
        let chosen: Vec<&Node> = (0..n)
            .filter(|&i| mask & (1 << i) != 0)
            .map(|i| &paths[i])
            .collect();
        for (i, a) in chosen.iter().enumerate() {
            for b in chosen.iter().skip(i + 1) {
                if crate::finite::is_ancestor(a, b) || crate::finite::is_ancestor(b, a) {
                    continue 'subset;
                }
            }
        }
        let cuts: Vec<Node> = chosen.into_iter().cloned().collect();
        out.push(RegularPrefix::cut(y, max_depth, &cuts));
    }
    Ok(out)
}

/// Bounded check of `y ∈ ncl.P`: every non-total cut-pattern prefix of
/// `y` (up to `max_depth`) has a completion in `property`, searching
/// completions built from `continuations` (plus `y` itself, which
/// extends every prefix of `y`).
///
/// # Errors
///
/// Returns the stuck prefix pattern as a [`Refutation`].
pub fn ncl_contains_bounded(
    y: &RegularTree,
    property: &Ctl,
    max_depth: usize,
    continuations: &[RegularTree],
    width: usize,
) -> Result<(), Refutation> {
    try_ncl_contains_bounded(y, property, max_depth, continuations, width, &Budget::unlimited())
        .expect("unlimited budget cannot be exceeded")
}

/// [`ncl_contains_bounded`] under a cooperative [`Budget`]: the prefix
/// enumeration is metered through [`try_nontotal_prefixes`] and each
/// completion-and-model-check charges one step (phase `"trees.ncl"`).
///
/// # Errors
///
/// Typed errors from [`try_nontotal_prefixes`] plus budget exhaustion
/// and cancellation. The inner result is the bounded membership
/// verdict.
pub fn try_ncl_contains_bounded(
    y: &RegularTree,
    property: &Ctl,
    max_depth: usize,
    continuations: &[RegularTree],
    width: usize,
    budget: &Budget,
) -> Result<Result<(), Refutation>, SlError> {
    let mut meter = budget.meter("trees.ncl");
    meter.charge(1)?;
    let y_in_property = y.satisfies(property);
    let prefixes = try_nontotal_prefixes(y, max_depth, budget)
        .map_err(|e| e.context("try_ncl_contains_bounded: enumerating prefixes"))?;
    // Enumerate paths again to recover cut descriptions for refutations.
    for (pattern_index, prefix) in prefixes.iter().enumerate() {
        if y_in_property {
            continue; // y itself completes every prefix of y
        }
        let mut found = false;
        for cont in continuations {
            meter.charge(1)?;
            if prefix.complete(cont, width).satisfies(property) {
                found = true;
                break;
            }
        }
        if !found {
            return Ok(Err(Refutation {
                depth: max_depth,
                cuts: vec![vec![pattern_index as u32]],
            }));
        }
    }
    Ok(Ok(()))
}

/// Absolute refutation of `y ∈ ncl.(A φ)` for a universal path property:
/// exhibits that the given cut pattern yields a non-total prefix of `y`
/// keeping an infinite path that violates `φ`. Every total extension of
/// that prefix inherits the violating path, so no extension lies in
/// `A φ` and `y ∉ ncl.(A φ)` — no bounds involved.
#[must_use]
pub fn ncl_refuted_by_path(
    y: &RegularTree,
    depth: usize,
    cuts: &[Node],
    path_formula: &Ltl,
) -> bool {
    let prefix = RegularPrefix::cut(y, depth, cuts);
    prefix.is_non_total()
        && prefix.is_prefix_of(y)
        && prefix.exists_infinite_path(&path_formula.clone().not())
}

/// The analogous absolute refutation for `fcl`: only *finite-depth*
/// prefixes count, and a finite-depth prefix keeps no infinite path —
/// which is exactly why `fcl`-refutations need the bounded search while
/// `ncl`-refutations can be absolute. Provided for documentation value:
/// always returns `false` on finite-depth patterns.
#[must_use]
pub fn fcl_refuted_by_path(
    y: &RegularTree,
    depth: usize,
    cuts: &[Node],
    path_formula: &Ltl,
) -> bool {
    let prefix = RegularPrefix::cut(y, depth, cuts);
    prefix.is_finite_depth() && prefix.exists_infinite_path(&path_formula.clone().not())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctl::parse_ctl;
    use sl_ltl::parse;
    use sl_omega::{Alphabet, Symbol};

    fn sigma() -> Alphabet {
        Alphabet::ab()
    }

    fn sym(name: &str) -> Symbol {
        sigma().symbol(name).unwrap()
    }

    fn const_a() -> RegularTree {
        RegularTree::constant(sigma(), sym("a"), 1)
    }

    fn const_b() -> RegularTree {
        RegularTree::constant(sigma(), sym("b"), 1)
    }

    /// Root a; left all-a, right all-b (width 2 at the root).
    fn two_branch() -> RegularTree {
        RegularTree::new(
            sigma(),
            vec![sym("a"), sym("a"), sym("b")],
            vec![vec![1, 2], vec![1], vec![2]],
            0,
        )
    }

    #[test]
    fn fcl_trivially_contains_members() {
        let q1 = parse_ctl(&sigma(), "a").unwrap();
        fcl_contains_bounded(&two_branch(), &q1, 2, &[], 1).unwrap();
    }

    #[test]
    fn fcl_of_q3a_contains_all_a_sequence() {
        // a^ω ∉ q3a (= a & AF !a) but every finite truncation extends
        // with b's into q3a: a^ω ∈ fcl.q3a.
        let q3a = parse_ctl(&sigma(), "a & AF !a").unwrap();
        let y = const_a();
        assert!(!y.satisfies(&q3a));
        fcl_contains_bounded(&y, &q3a, 3, &[const_b()], 1).unwrap();
    }

    #[test]
    fn fcl_of_q3a_excludes_b_rooted_trees() {
        // Trees rooted at b cannot extend into q3a: the depth-0
        // truncation is already stuck.
        let q3a = parse_ctl(&sigma(), "a & AF !a").unwrap();
        let err =
            fcl_contains_bounded(&const_b(), &q3a, 2, &[const_a(), const_b()], 1).unwrap_err();
        assert_eq!(err.depth, 0);
    }

    #[test]
    fn ncl_refutation_via_surviving_all_a_path() {
        // The paper's §4.3 argument: the two-branch tree (one all-a
        // path) is NOT in ncl.q3a, because cutting the other branch
        // leaves a prefix whose surviving path violates F !a — so no
        // extension satisfies A(a & F !a).
        let y = two_branch();
        let phi = parse(&sigma(), "a & F !a").unwrap();
        assert!(ncl_refuted_by_path(&y, 1, &[vec![1]], &phi));
        // The same refutation applies to q4a = A FG !a.
        let fg_not_a = parse(&sigma(), "F G !a").unwrap();
        assert!(ncl_refuted_by_path(&y, 1, &[vec![1]], &fg_not_a));
        // And to q5a = A GF a? The surviving path is all-a, which
        // SATISFIES GF a, so this cut does not refute q5a...
        let gf_a = parse(&sigma(), "G F a").unwrap();
        assert!(!ncl_refuted_by_path(&y, 1, &[vec![1]], &gf_a));
        // ...but cutting the all-a branch leaves the all-b path, which
        // violates GF a.
        assert!(ncl_refuted_by_path(&y, 1, &[vec![0]], &gf_a));
    }

    #[test]
    fn fcl_refutation_by_path_is_impossible_on_truncations() {
        // Finite-depth prefixes keep no infinite path: the path-based
        // refutation cannot fire.
        let y = two_branch();
        let phi = parse(&sigma(), "F G !a").unwrap();
        assert!(!fcl_refuted_by_path(&y, 1, &[vec![0], vec![1]], &phi));
    }

    #[test]
    fn ncl_of_q4b_contains_everything_sampled() {
        // q4b = E FG !a: any prefix completes with b^ω below a cut
        // leaf. Check all cut-pattern prefixes of the two-branch tree.
        let q4b = parse_ctl(&sigma(), "EFG !a").unwrap();
        ncl_contains_bounded(&two_branch(), &q4b, 2, &[const_b()], 1).unwrap();
        ncl_contains_bounded(&const_a(), &q4b, 2, &[const_b()], 1).unwrap();
    }

    #[test]
    fn ncl_bounded_finds_stuck_prefixes() {
        // q1' = "root is b": prefixes of an a-rooted tree never
        // complete into it.
        let root_b = parse_ctl(&sigma(), "b").unwrap();
        let err =
            ncl_contains_bounded(&const_a(), &root_b, 1, &[const_a(), const_b()], 1).unwrap_err();
        assert_eq!(err.depth, 1);
    }

    #[test]
    fn nontotal_prefix_enumeration_counts() {
        // Unary constant tree, depth 2: paths ε, 0, 00; antichains:
        // {ε}, {0}, {00} (any two are nested): 3 prefixes.
        let prefixes = nontotal_prefixes(&const_a(), 2);
        assert_eq!(prefixes.len(), 3);
        for p in &prefixes {
            assert!(p.is_non_total());
            assert!(p.is_prefix_of(&const_a()));
        }
        // Two-branch tree, depth 1: paths ε, 0, 1; antichains: {ε},
        // {0}, {1}, {0,1}: 4 prefixes.
        assert_eq!(nontotal_prefixes(&two_branch(), 1).len(), 4);
    }

    #[test]
    fn try_variants_match_their_panicking_twins() {
        let q3a = parse_ctl(&sigma(), "a & AF !a").unwrap();
        let y = const_a();
        let budget = Budget::unlimited();
        assert!(try_fcl_contains_bounded(&y, &q3a, 3, &[const_b()], 1, &budget)
            .unwrap()
            .is_ok());
        assert!(try_ncl_contains_bounded(&y, &q3a, 3, &[const_b()], 1, &budget)
            .unwrap()
            .is_ok());
        let prefixes = try_nontotal_prefixes(&const_a(), 2, &budget).unwrap();
        assert_eq!(prefixes.len(), nontotal_prefixes(&const_a(), 2).len());
    }

    #[test]
    fn try_variants_respect_step_limits() {
        let q3a = parse_ctl(&sigma(), "a & AF !a").unwrap();
        let y = const_a();
        let tight = Budget::unlimited().with_steps(2);
        let err = try_fcl_contains_bounded(&y, &q3a, 5, &[const_b(), const_a()], 1, &tight)
            .unwrap_err();
        assert!(err.is_budget_exceeded());
        let err = try_ncl_contains_bounded(&two_branch(), &q3a, 2, &[const_b()], 1, &tight)
            .unwrap_err();
        assert!(err.root().is_budget_exceeded());
    }

    #[test]
    fn deep_unrolling_is_a_typed_error() {
        // Depth 8 on the two-branch tree yields 17 unrolling paths: the
        // panicking API asserts, the try API reports InvalidInput.
        let err = try_nontotal_prefixes(&two_branch(), 8, &Budget::unlimited()).unwrap_err();
        assert!(matches!(err, SlError::InvalidInput(_)), "{err}");
        assert!(err.to_string().contains("lower max_depth"), "{err}");
    }

    #[test]
    fn sequences_are_in_ncl_q3a() {
        // The paper: {a·y : y ∈ Σ^ω} ⊆ ncl.q3a; in particular a^ω,
        // which is not in q3a itself.
        let q3a = parse_ctl(&sigma(), "a & AF !a").unwrap();
        let y = const_a();
        assert!(!y.satisfies(&q3a));
        ncl_contains_bounded(&y, &q3a, 3, &[const_b()], 1).unwrap();
    }
}
