//! Regular (finitely-representable) total trees.
//!
//! A [`RegularTree`] is a rooted graph in which every node has a label
//! and an ordered, nonempty list of children; it denotes the total tree
//! obtained by unrolling from the root. Regular trees are the
//! finitely-representable skeleton of `A_tot` — the branching-time
//! counterpart of lasso words — and everything the experiments quantify
//! over.

use crate::finite::{FiniteTree, Node};
use crate::kripke::Kripke;
use sl_omega::{Alphabet, Symbol};

/// A regular total tree: a rooted labeled graph with ordered children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegularTree {
    alphabet: Alphabet,
    labels: Vec<Symbol>,
    children: Vec<Vec<usize>>,
    root: usize,
}

impl RegularTree {
    /// Builds a regular tree.
    ///
    /// # Panics
    ///
    /// Panics on empty node set, length mismatch, out-of-range child or
    /// root, or a node with no children (the denoted tree must be
    /// total).
    #[must_use]
    pub fn new(
        alphabet: Alphabet,
        labels: Vec<Symbol>,
        children: Vec<Vec<usize>>,
        root: usize,
    ) -> Self {
        let n = labels.len();
        assert!(n > 0, "regular tree needs nodes");
        assert_eq!(children.len(), n, "children list length mismatch");
        assert!(root < n, "root out of range");
        for (v, kids) in children.iter().enumerate() {
            assert!(
                !kids.is_empty(),
                "node {v} has no children (tree not total)"
            );
            for &k in kids {
                assert!(k < n, "child out of range");
            }
        }
        RegularTree {
            alphabet,
            labels,
            children,
            root,
        }
    }

    /// The constant tree: every node labeled `label`, `width` children.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    #[must_use]
    pub fn constant(alphabet: Alphabet, label: Symbol, width: usize) -> Self {
        assert!(width > 0, "width must be positive");
        RegularTree::new(alphabet, vec![label], vec![vec![0; width]], 0)
    }

    /// A tree that spells the lasso word `stem (cycle)^ω` down every
    /// branch — the "trees can be sequences" embedding of Section 4.3,
    /// generalized to `width` identical children per node.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    #[must_use]
    pub fn from_lasso(word: &sl_omega::LassoWord, alphabet: Alphabet, width: usize) -> Self {
        assert!(width > 0, "width must be positive");
        let phases = word.phase_count();
        let labels: Vec<Symbol> = (0..phases).map(|i| word.at(i)).collect();
        let children: Vec<Vec<usize>> = (0..phases)
            .map(|i| vec![word.next_phase(i); width])
            .collect();
        RegularTree::new(alphabet, labels, children, 0)
    }

    /// The alphabet.
    #[must_use]
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Number of graph nodes (not tree nodes, which are infinite).
    #[must_use]
    pub fn num_graph_nodes(&self) -> usize {
        self.labels.len()
    }

    /// The root graph node.
    #[must_use]
    pub fn root(&self) -> usize {
        self.root
    }

    /// The label of a graph node.
    #[must_use]
    pub fn label(&self, node: usize) -> Symbol {
        self.labels[node]
    }

    /// The ordered children of a graph node.
    #[must_use]
    pub fn children(&self, node: usize) -> &[usize] {
        &self.children[node]
    }

    /// The graph node at a tree path, if every step is in range.
    #[must_use]
    pub fn node_at(&self, path: &[u32]) -> Option<usize> {
        let mut current = self.root;
        for &step in path {
            current = *self.children[current].get(step as usize)?;
        }
        Some(current)
    }

    /// The label of the denoted tree at a path.
    #[must_use]
    pub fn label_at(&self, path: &[u32]) -> Option<Symbol> {
        self.node_at(path).map(|v| self.labels[v])
    }

    /// The depth-`depth` truncation of the denoted tree, as a finite
    /// tree (all nodes of depth at most `depth`). Truncations are
    /// finite-depth prefixes of the denoted tree — exactly what `fcl`
    /// quantifies over.
    #[must_use]
    pub fn truncate(&self, depth: usize) -> FiniteTree {
        let mut entries: Vec<(Node, Symbol)> = Vec::new();
        let mut frontier: Vec<(Node, usize)> = vec![(Vec::new(), self.root)];
        entries.push((Vec::new(), self.labels[self.root]));
        for _ in 0..depth {
            let mut next = Vec::new();
            for (path, node) in frontier {
                for (i, &child) in self.children[node].iter().enumerate() {
                    let mut child_path = path.clone();
                    child_path.push(i as u32);
                    entries.push((child_path.clone(), self.labels[child]));
                    next.push((child_path, child));
                }
            }
            frontier = next;
        }
        FiniteTree::from_entries(&entries).expect("truncations are prefix-closed")
    }

    /// Whether this tree and `other` denote the same total tree
    /// (labels and branching widths agree at every path).
    #[must_use]
    pub fn denotes_same_tree(&self, other: &RegularTree) -> bool {
        if self.alphabet != other.alphabet {
            return false;
        }
        let mut seen = std::collections::HashSet::new();
        let mut work = vec![(self.root, other.root)];
        while let Some((u, v)) = work.pop() {
            if !seen.insert((u, v)) {
                continue;
            }
            if self.labels[u] != other.labels[v]
                || self.children[u].len() != other.children[v].len()
            {
                return false;
            }
            for (&cu, &cv) in self.children[u].iter().zip(&other.children[v]) {
                work.push((cu, cv));
            }
        }
        true
    }

    /// Views the graph as a Kripke structure rooted at the tree root.
    /// CTL is bisimulation-invariant, so model checking the structure
    /// decides the formula on the denoted tree.
    #[must_use]
    pub fn to_kripke(&self) -> Kripke {
        Kripke::new(
            self.alphabet.clone(),
            self.labels.clone(),
            self.children.clone(),
            self.root,
        )
    }

    /// Whether the denoted tree satisfies the CTL formula.
    #[must_use]
    pub fn satisfies(&self, formula: &crate::ctl::Ctl) -> bool {
        crate::ctl::satisfies(&self.to_kripke(), formula)
    }

    /// The tree that agrees with `self` on all nodes of depth at most
    /// `depth` and continues with `cont` below each depth-`depth` node
    /// (each gets `width` copies of `cont`'s root as children). The
    /// result extends the truncation `self.truncate(depth)`.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or the alphabets differ.
    #[must_use]
    pub fn graft(&self, depth: usize, cont: &RegularTree, width: usize) -> RegularTree {
        assert!(width > 0, "width must be positive");
        assert_eq!(self.alphabet, cont.alphabet, "alphabet mismatch");
        // Unroll self to `depth` as fresh nodes, then splice cont's graph.
        let mut labels: Vec<Symbol> = Vec::new();
        let mut children: Vec<Vec<usize>> = Vec::new();
        // Frontier of (new node id, original graph node, remaining depth).
        let mut stack: Vec<(usize, usize, usize)> = Vec::new();
        labels.push(self.labels[self.root]);
        children.push(Vec::new());
        stack.push((0, self.root, depth));
        let mut pending_cont_links: Vec<usize> = Vec::new();
        while let Some((id, node, remaining)) = stack.pop() {
            if remaining == 0 {
                pending_cont_links.push(id);
                continue;
            }
            for &child in &self.children[node] {
                let cid = labels.len();
                labels.push(self.labels[child]);
                children.push(Vec::new());
                children[id].push(cid);
                stack.push((cid, child, remaining - 1));
            }
        }
        // Append cont's graph, shifted.
        let offset = labels.len();
        for v in 0..cont.num_graph_nodes() {
            labels.push(cont.labels[v]);
            children.push(cont.children[v].iter().map(|&c| c + offset).collect());
        }
        let cont_root = offset + cont.root;
        for leaf in pending_cont_links {
            children[leaf] = vec![cont_root; width];
        }
        RegularTree::new(self.alphabet.clone(), labels, children, 0)
    }
}

/// All regular trees over the alphabet with exactly `nodes` graph nodes
/// and every node having exactly `width` children, rooted at node 0 —
/// a systematic sample universe for the branching experiments. Grows as
/// `(|Σ| * nodes^width)^nodes`; keep the parameters small.
#[must_use]
pub fn enumerate_regular_trees(
    alphabet: &Alphabet,
    nodes: usize,
    width: usize,
) -> Vec<RegularTree> {
    assert!(nodes >= 1 && width >= 1, "need positive sizes");
    let symbol_count = alphabet.len();
    let child_combos = nodes.pow(width as u32);
    let per_node = symbol_count * child_combos;
    let total = per_node.pow(nodes as u32);
    let mut out = Vec::with_capacity(total);
    for code in 0..total {
        let mut c = code;
        let mut labels = Vec::with_capacity(nodes);
        let mut children = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            let node_code = c % per_node;
            c /= per_node;
            let label_index = node_code % symbol_count;
            let mut combo = node_code / symbol_count;
            let mut kids = Vec::with_capacity(width);
            for _ in 0..width {
                kids.push(combo % nodes);
                combo /= nodes;
            }
            labels.push(Symbol(label_index as u16));
            children.push(kids);
        }
        out.push(RegularTree::new(alphabet.clone(), labels, children, 0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctl::parse_ctl;
    use sl_omega::LassoWord;

    fn sigma() -> Alphabet {
        Alphabet::ab()
    }

    fn sym(name: &str) -> Symbol {
        sigma().symbol(name).unwrap()
    }

    /// Root a; left subtree constant-a path, right subtree constant-b.
    fn two_branch() -> RegularTree {
        RegularTree::new(
            sigma(),
            vec![sym("a"), sym("a"), sym("b")],
            vec![vec![1, 2], vec![1], vec![2]],
            0,
        )
    }

    #[test]
    fn constant_tree() {
        let t = RegularTree::constant(sigma(), sym("a"), 2);
        assert_eq!(t.num_graph_nodes(), 1);
        assert_eq!(t.label_at(&[0, 1, 0]), Some(sym("a")));
        assert!(t.satisfies(&parse_ctl(&sigma(), "AG a").unwrap()));
    }

    #[test]
    fn paths_resolve() {
        let t = two_branch();
        assert_eq!(t.label_at(&[]), Some(sym("a")));
        assert_eq!(t.label_at(&[0]), Some(sym("a")));
        assert_eq!(t.label_at(&[1]), Some(sym("b")));
        assert_eq!(t.label_at(&[0, 0, 0]), Some(sym("a")));
        assert_eq!(t.label_at(&[1, 0]), Some(sym("b")));
        // Width is 2 at the root, 1 below.
        assert_eq!(t.label_at(&[2]), None);
        assert_eq!(t.label_at(&[0, 1]), None);
    }

    #[test]
    fn truncation_shape() {
        let t = two_branch();
        let x = t.truncate(2);
        // Nodes: root, 2 children, 2 grandchildren (width 1 below).
        assert_eq!(x.len(), 5);
        assert_eq!(x.depth(), Some(2));
        assert_eq!(x.label(&[0, 0]), Some(sym("a")));
        assert_eq!(x.label(&[1, 0]), Some(sym("b")));
        // The truncation is a prefix of deeper truncations.
        assert!(x.is_prefix_of(&t.truncate(4)));
    }

    #[test]
    fn lasso_embedding() {
        let s = sigma();
        let w = LassoWord::parse(&s, "b", "a b");
        let t = RegularTree::from_lasso(&w, s.clone(), 1);
        assert_eq!(t.label_at(&[]), Some(sym("b")));
        assert_eq!(t.label_at(&[0]), Some(sym("a")));
        assert_eq!(t.label_at(&[0, 0]), Some(sym("b")));
        assert_eq!(t.label_at(&[0, 0, 0]), Some(sym("a")));
        // The sequence-tree satisfies GF a along its only path.
        assert!(t.satisfies(&parse_ctl(&s, "AGF a").unwrap()));
    }

    #[test]
    fn denotes_same_tree_modulo_representation() {
        let s = sigma();
        // Two representations of the constant-a unary tree.
        let one = RegularTree::new(s.clone(), vec![sym("a")], vec![vec![0]], 0);
        let two = RegularTree::new(
            s.clone(),
            vec![sym("a"), sym("a")],
            vec![vec![1], vec![0]],
            0,
        );
        assert!(one.denotes_same_tree(&two));
        assert_ne!(one, two); // structural inequality
        let b = RegularTree::new(s, vec![sym("b")], vec![vec![0]], 0);
        assert!(!one.denotes_same_tree(&b));
    }

    #[test]
    fn denotes_same_tree_checks_width() {
        let s = sigma();
        let narrow = RegularTree::constant(s.clone(), sym("a"), 1);
        let wide = RegularTree::constant(s, sym("a"), 2);
        assert!(!narrow.denotes_same_tree(&wide));
    }

    #[test]
    fn ctl_on_two_branch() {
        let s = sigma();
        let t = two_branch();
        assert!(t.satisfies(&parse_ctl(&s, "EG a").unwrap()));
        assert!(t.satisfies(&parse_ctl(&s, "EF b").unwrap()));
        assert!(!t.satisfies(&parse_ctl(&s, "AF b").unwrap()));
        assert!(t.satisfies(&parse_ctl(&s, "EGF a").unwrap()));
        assert!(!t.satisfies(&parse_ctl(&s, "AFG b").unwrap()));
    }

    #[test]
    fn graft_agrees_up_to_depth_then_continues() {
        let s = sigma();
        let t = two_branch();
        let z = t.graft(1, &RegularTree::constant(s.clone(), sym("b"), 1), 1);
        // Depth <= 1 agrees with t.
        assert_eq!(z.label_at(&[]), t.label_at(&[]));
        assert_eq!(z.label_at(&[0]), t.label_at(&[0]));
        assert_eq!(z.label_at(&[1]), t.label_at(&[1]));
        // Below depth 1 all b.
        assert_eq!(z.label_at(&[0, 0]), Some(sym("b")));
        assert_eq!(z.label_at(&[0, 0, 0]), Some(sym("b")));
        // The truncation is a prefix of the graft.
        assert!(t.truncate(1).is_prefix_of(&z.truncate(4)));
    }

    #[test]
    fn enumeration_counts_and_validity() {
        let s = sigma();
        // 1 graph node, width 1: |Σ| * 1 = 2 trees.
        assert_eq!(enumerate_regular_trees(&s, 1, 1).len(), 2);
        // 2 nodes, width 1: (2 * 2)^2 = 16.
        let trees = enumerate_regular_trees(&s, 2, 1);
        assert_eq!(trees.len(), 16);
        // 1 node, width 2: 2 * 1 = 2.
        assert_eq!(enumerate_regular_trees(&s, 1, 2).len(), 2);
        // All enumerated trees are well-formed (constructor validated).
        for t in &trees {
            assert_eq!(t.num_graph_nodes(), 2);
        }
    }

    #[test]
    #[should_panic(expected = "no children")]
    fn totality_enforced() {
        let _ = RegularTree::new(sigma(), vec![sym("a")], vec![vec![]], 0);
    }
}
