//! The paper's branching-time example properties q0–q6 (Section 4.3) —
//! Rem's examples transported to CTL/CTL*.
//!
//! | name | CTL(*)           | classification claims verified in E6 |
//! |------|------------------|----------------------------------------|
//! | q0   | `false`          | universally (hence existentially) safe |
//! | q1   | `a`              | universally safe                       |
//! | q2   | `!a`             | universally safe                       |
//! | q3a  | `a & AF !a`      | `fcl.q3a = q1`, `ncl.q3a ≠ q1`, `ncl.q3a ≠ q3a` |
//! | q3b  | `a & EF !a`      | `ncl.q3b = fcl.q3b = q1`               |
//! | q4a  | `A FG !a`        | `fcl.q4a = A_tot`, `ncl.q4a ≠ A_tot`   |
//! | q4b  | `E FG !a`        | `ncl.q4b = A_tot` (so `fcl.q4b = A_tot`) |
//! | q5a  | `A GF a`         | `fcl.q5a = A_tot`, `ncl.q5a ≠ A_tot`   |
//! | q5b  | `E GF a`         | `ncl.q5b = A_tot` (so `fcl.q5b = A_tot`) |
//! | q6   | `true`           | universally safe (and live)            |

use crate::ctl::{parse_ctl, Ctl};
use crate::regular::RegularTree;
use sl_omega::Alphabet;

/// One branching-time example: name, CTL(*) rendering, and for the
/// universal-path-quantified ones the underlying LTL path formula (used
/// by the absolute `ncl` refutations).
#[derive(Debug, Clone)]
pub struct QExample {
    /// Short name (`q0`, `q3a`, ...).
    pub name: &'static str,
    /// The formula as parsed CTL (with limit operators).
    pub formula: Ctl,
    /// For `A φ`-shaped properties, the path formula `φ` as LTL text.
    pub universal_path: Option<&'static str>,
}

/// All the q-examples over an alphabet containing `a`.
///
/// # Panics
///
/// Panics if the alphabet lacks the symbol `a`.
#[must_use]
pub fn examples(alphabet: &Alphabet) -> Vec<QExample> {
    let make = |name, text: &str, universal_path| QExample {
        name,
        formula: parse_ctl(alphabet, text).expect("q formulas are well-formed"),
        universal_path,
    };
    vec![
        make("q0", "false", None),
        make("q1", "a", Some("a")),
        make("q2", "!a", Some("!a")),
        make("q3a", "a & AF !a", Some("a & F !a")),
        make("q3b", "a & EF !a", None),
        make("q4a", "AFG !a", Some("F G !a")),
        make("q4b", "EFG !a", None),
        make("q5a", "AGF a", Some("G F a")),
        make("q5b", "EGF a", None),
        make("q6", "true", Some("true")),
    ]
}

/// The paper's recurring counterexample witness: a tree with (at least)
/// two paths, one of which is all-`a` — root `a`, left branch constant
/// `a`, right branch constant `b`.
///
/// # Panics
///
/// Panics if the alphabet lacks `a` or `b`.
#[must_use]
pub fn two_path_witness(alphabet: &Alphabet) -> RegularTree {
    let a = alphabet.symbol("a").expect("alphabet has a");
    let b = alphabet.symbol("b").expect("alphabet has b");
    RegularTree::new(
        alphabet.clone(),
        vec![a, a, b],
        vec![vec![1, 2], vec![1], vec![2]],
        0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closures::{fcl_contains_bounded, ncl_contains_bounded, ncl_refuted_by_path};
    use crate::regular::{enumerate_regular_trees, RegularTree};
    use sl_ltl::parse;

    fn sigma() -> Alphabet {
        Alphabet::ab()
    }

    fn by_name(name: &str) -> QExample {
        examples(&sigma())
            .into_iter()
            .find(|e| e.name == name)
            .unwrap()
    }

    fn universe() -> Vec<RegularTree> {
        // All 2-graph-node unary trees and all 1-node binary trees,
        // plus the paper's witness.
        let s = sigma();
        let mut trees = enumerate_regular_trees(&s, 2, 1);
        trees.extend(enumerate_regular_trees(&s, 1, 2));
        trees.push(two_path_witness(&s));
        trees
    }

    fn continuations() -> Vec<RegularTree> {
        let s = sigma();
        vec![
            RegularTree::constant(s.clone(), s.symbol("a").unwrap(), 1),
            RegularTree::constant(s.clone(), s.symbol("b").unwrap(), 1),
            two_path_witness(&s),
        ]
    }

    #[test]
    fn q1_q2_q6_are_universally_safe_on_universe() {
        // q = fcl.q on the sampled universe: y ∈ fcl.q ⇔ y ∈ q.
        for name in ["q1", "q2", "q6"] {
            let q = by_name(name);
            for y in universe() {
                let in_q = y.satisfies(&q.formula);
                let in_fcl = fcl_contains_bounded(&y, &q.formula, 2, &continuations(), 1).is_ok();
                assert_eq!(in_fcl, in_q, "{name} on {y:?}");
            }
        }
    }

    #[test]
    fn q0_closure_is_empty() {
        // fcl.false = false: nothing has extensions in the empty
        // property.
        let q0 = by_name("q0");
        for y in universe() {
            assert!(fcl_contains_bounded(&y, &q0.formula, 1, &continuations(), 1).is_err());
        }
    }

    #[test]
    fn fcl_q3a_is_q1() {
        // fcl.q3a = q1 on the universe: a-rooted trees always extend
        // into q3a; b-rooted never do.
        let q3a = by_name("q3a");
        let q1 = by_name("q1");
        for y in universe() {
            let in_fcl = fcl_contains_bounded(&y, &q3a.formula, 2, &continuations(), 1).is_ok();
            assert_eq!(in_fcl, y.satisfies(&q1.formula), "{y:?}");
        }
    }

    #[test]
    fn ncl_q3a_differs_from_q1_via_witness() {
        // The witness is in q1 but NOT in ncl.q3a: cutting the b-branch
        // leaves the all-a path, violating a & F !a.
        let s = sigma();
        let y = two_path_witness(&s);
        let q1 = by_name("q1");
        assert!(y.satisfies(&q1.formula));
        let phi = parse(&s, by_name("q3a").universal_path.unwrap()).unwrap();
        assert!(ncl_refuted_by_path(&y, 1, &[vec![1]], &phi));
    }

    #[test]
    fn ncl_q3a_differs_from_q3a_via_sequences() {
        // a^ω ∈ ncl.q3a \ q3a.
        let s = sigma();
        let a_seq = RegularTree::constant(s.clone(), s.symbol("a").unwrap(), 1);
        let q3a = by_name("q3a");
        assert!(!a_seq.satisfies(&q3a.formula));
        ncl_contains_bounded(&a_seq, &q3a.formula, 2, &continuations(), 1).unwrap();
    }

    #[test]
    fn ncl_and_fcl_of_q3b_are_q1() {
        let q3b = by_name("q3b");
        let q1 = by_name("q1");
        for y in universe() {
            let in_q1 = y.satisfies(&q1.formula);
            let in_fcl = fcl_contains_bounded(&y, &q3b.formula, 2, &continuations(), 1).is_ok();
            assert_eq!(in_fcl, in_q1, "fcl.q3b = q1 fails on {y:?}");
            let in_ncl = ncl_contains_bounded(&y, &q3b.formula, 2, &continuations(), 1).is_ok();
            assert_eq!(in_ncl, in_q1, "ncl.q3b = q1 fails on {y:?}");
        }
    }

    #[test]
    fn fcl_q4a_q5a_are_universal() {
        // Every sampled tree is in fcl.q4a and fcl.q5a.
        for name in ["q4a", "q5a"] {
            let q = by_name(name);
            for y in universe() {
                fcl_contains_bounded(&y, &q.formula, 2, &continuations(), 1)
                    .unwrap_or_else(|e| panic!("{name} refuted on {y:?} at depth {}", e.depth));
            }
        }
    }

    #[test]
    fn ncl_q4a_q5a_not_universal() {
        // The witness tree fails both, absolutely.
        let s = sigma();
        let y = two_path_witness(&s);
        let q4a_path = parse(&s, "F G !a").unwrap();
        assert!(ncl_refuted_by_path(&y, 1, &[vec![1]], &q4a_path));
        let q5a_path = parse(&s, "G F a").unwrap();
        assert!(ncl_refuted_by_path(&y, 1, &[vec![0]], &q5a_path));
    }

    #[test]
    fn ncl_q4b_q5b_universal_on_universe() {
        for (name, _cont_sym) in [("q4b", "b"), ("q5b", "a")] {
            let q = by_name(name);
            for y in universe() {
                ncl_contains_bounded(&y, &q.formula, 2, &continuations(), 1)
                    .unwrap_or_else(|e| panic!("{name} refuted on {y:?} at depth {}", e.depth));
            }
        }
    }

    #[test]
    fn sequences_inside_ncl_q4a_q5a() {
        // "trees can be sequences": every unary lasso tree is in
        // ncl.q4a and ncl.q5a (prefixes of sequences are finite paths;
        // complete with b^ω / a^ω respectively).
        let s = sigma();
        for w in sl_omega::all_lassos(&s, 1, 2) {
            let y = RegularTree::from_lasso(&w, s.clone(), 1);
            for name in ["q4a", "q5a"] {
                let q = by_name(name);
                ncl_contains_bounded(&y, &q.formula, 2, &continuations(), 1)
                    .unwrap_or_else(|e| panic!("{name} on {w} at depth {}", e.depth));
            }
        }
    }

    #[test]
    fn theorem5_hypotheses_for_af_a() {
        // AF a: fcl = A_tot (bounded), ncl < A_tot (absolute via the
        // two-path witness with the all-b branch kept).
        let s = sigma();
        let af_a = parse_ctl(&s, "AF a").unwrap();
        for y in universe() {
            fcl_contains_bounded(&y, &af_a, 2, &continuations(), 1).unwrap();
        }
        // A witness with an all-b path from the root: root b, one
        // branch all-b, the other all-a.
        let a = s.symbol("a").unwrap();
        let b = s.symbol("b").unwrap();
        let witness = RegularTree::new(
            s.clone(),
            vec![b, b, a],
            vec![vec![1, 2], vec![1], vec![2]],
            0,
        );
        let path = parse(&s, "F a").unwrap();
        // Keep only the all-b branch: it violates F a, so no extension
        // of the pruned prefix satisfies AF a.
        assert!(ncl_refuted_by_path(&witness, 1, &[vec![1]], &path));
    }
}
