//! Regular prefixes: finitely-represented, possibly-infinite non-total
//! trees, obtained from a regular tree by cutting subtrees.
//!
//! The branching-time closures quantify over prefixes: `fcl` over
//! *finite-depth* prefixes and `ncl` over *non-total* ones (Definitions
//! 5 and 6). The crucial difference — the reason `ncl` is not a
//! topological closure — is that a non-total prefix may keep entire
//! infinite branches while cutting others. [`RegularPrefix`] represents
//! exactly these: a rooted labeled graph where some nodes have no
//! children (the cuts).

use crate::finite::Node;
use crate::kripke::Kripke;
use crate::regular::RegularTree;
use sl_ltl::Ltl;
use sl_omega::{Alphabet, Symbol};

/// A regular prefix: like [`RegularTree`] but nodes may be childless
/// (cut leaves). Denotes a prefix-closed labeled tree that may mix
/// finite and infinite branches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegularPrefix {
    alphabet: Alphabet,
    labels: Vec<Symbol>,
    children: Vec<Vec<usize>>,
    root: usize,
}

impl RegularPrefix {
    /// Wraps a total regular tree as a (total) prefix.
    #[must_use]
    pub fn from_tree(tree: &RegularTree) -> Self {
        RegularPrefix {
            alphabet: tree.alphabet().clone(),
            labels: (0..tree.num_graph_nodes()).map(|v| tree.label(v)).collect(),
            children: (0..tree.num_graph_nodes())
                .map(|v| tree.children(v).to_vec())
                .collect(),
            root: tree.root(),
        }
    }

    /// The prefix of `tree` obtained by unrolling to `depth` and cutting
    /// the subtrees rooted at `cut_paths`; un-cut nodes at the frontier
    /// keep their full (regular, possibly infinite) subtrees.
    ///
    /// # Panics
    ///
    /// Panics if a cut path does not exist in the tree or is longer than
    /// `depth`.
    #[must_use]
    pub fn cut(tree: &RegularTree, depth: usize, cut_paths: &[Node]) -> Self {
        for path in cut_paths {
            assert!(path.len() <= depth, "cut path deeper than the unrolling");
            assert!(tree.node_at(path).is_some(), "cut path not in the tree");
        }
        let is_cut = |path: &[u32]| cut_paths.iter().any(|c| c.as_slice() == path);
        let under_cut = |path: &[u32]| {
            cut_paths
                .iter()
                .any(|c| crate::finite::is_ancestor(c, path))
        };

        let mut labels: Vec<Symbol> = Vec::new();
        let mut children: Vec<Vec<usize>> = Vec::new();
        // The tail: a full copy of the original graph, appended after the
        // unrolled part; frontier nodes link into it.
        // First, unroll.
        struct Item {
            id: usize,
            graph_node: usize,
            path: Node,
        }
        labels.push(tree.label(tree.root()));
        children.push(Vec::new());
        let mut stack = vec![Item {
            id: 0,
            graph_node: tree.root(),
            path: Vec::new(),
        }];
        let mut frontier_links: Vec<(usize, usize)> = Vec::new(); // (id, graph node)
        while let Some(item) = stack.pop() {
            if is_cut(&item.path) {
                continue; // leaf: no children
            }
            debug_assert!(
                !under_cut(&item.path),
                "descendants of cuts are not unrolled"
            );
            if item.path.len() == depth {
                frontier_links.push((item.id, item.graph_node));
                continue;
            }
            for (i, &child) in tree.children(item.graph_node).iter().enumerate() {
                let mut child_path = item.path.clone();
                child_path.push(i as u32);
                if under_cut(&child_path) && !is_cut(&child_path) {
                    continue;
                }
                let cid = labels.len();
                labels.push(tree.label(child));
                children.push(Vec::new());
                children[item.id].push(cid);
                stack.push(Item {
                    id: cid,
                    graph_node: child,
                    path: child_path,
                });
            }
        }
        // Append the original graph for the frontier to link into.
        let offset = labels.len();
        for v in 0..tree.num_graph_nodes() {
            labels.push(tree.label(v));
            children.push(tree.children(v).iter().map(|&c| c + offset).collect());
        }
        for (id, graph_node) in frontier_links {
            children[id] = tree
                .children(graph_node)
                .iter()
                .map(|&c| c + offset)
                .collect();
        }
        RegularPrefix {
            alphabet: tree.alphabet().clone(),
            labels,
            children,
            root: 0,
        }
    }

    /// The alphabet.
    #[must_use]
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Reachable graph nodes from the root.
    fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.labels.len()];
        seen[self.root] = true;
        let mut stack = vec![self.root];
        while let Some(v) = stack.pop() {
            for &c in &self.children[v] {
                if !seen[c] {
                    seen[c] = true;
                    stack.push(c);
                }
            }
        }
        seen
    }

    /// Whether the denoted prefix is *non-total* (has at least one
    /// dead-end leaf) — membership in the paper's `A_nt`.
    #[must_use]
    pub fn is_non_total(&self) -> bool {
        let reach = self.reachable();
        (0..self.labels.len()).any(|v| reach[v] && self.children[v].is_empty())
    }

    /// Whether the denoted prefix is *finite-depth* (`A_f`): no
    /// reachable cycle, so all branches die within bounded depth.
    #[must_use]
    pub fn is_finite_depth(&self) -> bool {
        // A reachable cycle exists iff DFS finds a back edge.
        let reach = self.reachable();
        let n = self.labels.len();
        let mut color = vec![0u8; n]; // 0 white, 1 gray, 2 black
        for start in 0..n {
            if !reach[start] || color[start] != 0 {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            color[start] = 1;
            while let Some(&mut (v, ref mut i)) = stack.last_mut() {
                if *i < self.children[v].len() {
                    let c = self.children[v][*i];
                    *i += 1;
                    match color[c] {
                        0 => {
                            color[c] = 1;
                            stack.push((c, 0));
                        }
                        1 => return false, // back edge: cycle
                        _ => {}
                    }
                } else {
                    color[v] = 2;
                    stack.pop();
                }
            }
        }
        true
    }

    /// Whether the denoted prefix is a prefix (Definition 4) of the
    /// total tree denoted by `z`: labels agree, and internal nodes have
    /// exactly matching branching (growth only through the cut leaves).
    #[must_use]
    pub fn is_prefix_of(&self, z: &RegularTree) -> bool {
        if &self.alphabet != z.alphabet() {
            return false;
        }
        let mut seen = std::collections::HashSet::new();
        let mut work = vec![(self.root, z.root())];
        while let Some((u, v)) = work.pop() {
            if !seen.insert((u, v)) {
                continue;
            }
            if self.labels[u] != z.label(v) {
                return false;
            }
            if self.children[u].is_empty() {
                continue; // cut leaf: z continues freely
            }
            if self.children[u].len() != z.children(v).len() {
                return false; // internal growth is not allowed
            }
            for (&cu, &cv) in self.children[u].iter().zip(z.children(v)) {
                work.push((cu, cv));
            }
        }
        true
    }

    /// Completes the prefix into a total regular tree by attaching
    /// `width` copies of `cont` below every cut leaf. The result has
    /// this prefix as a prefix.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or alphabets differ.
    #[must_use]
    pub fn complete(&self, cont: &RegularTree, width: usize) -> RegularTree {
        assert!(width > 0, "width must be positive");
        assert_eq!(&self.alphabet, cont.alphabet(), "alphabet mismatch");
        let mut labels = self.labels.clone();
        let mut children = self.children.clone();
        let offset = labels.len();
        for v in 0..cont.num_graph_nodes() {
            labels.push(cont.label(v));
            children.push(cont.children(v).iter().map(|&c| c + offset).collect());
        }
        let cont_root = offset + cont.root();
        for kids in children.iter_mut().take(offset) {
            if kids.is_empty() {
                *kids = vec![cont_root; width];
            }
        }
        RegularTree::new(self.alphabet.clone(), labels, children, self.root)
    }

    /// Whether the prefix contains an infinite path (never hitting a cut
    /// leaf) whose label word satisfies the LTL formula. Any extension
    /// of the prefix keeps all such paths, so a path violating `φ` here
    /// *absolutely* refutes membership of any extension in the universal
    /// property `A φ`.
    #[must_use]
    pub fn exists_infinite_path(&self, formula: &Ltl) -> bool {
        // Restrict to nodes from which an infinite path exists:
        // iteratively remove childless nodes.
        let n = self.labels.len();
        let mut alive: Vec<bool> = (0..n).map(|v| !self.children[v].is_empty()).collect();
        loop {
            let mut changed = false;
            for v in 0..n {
                if alive[v] && !self.children[v].iter().any(|&c| alive[c]) {
                    alive[v] = false;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        if !alive[self.root] {
            return false;
        }
        // Build the surviving Kripke structure (remap ids).
        let mut remap = vec![usize::MAX; n];
        let mut labels = Vec::new();
        let mut succ: Vec<Vec<usize>> = Vec::new();
        for v in 0..n {
            if alive[v] {
                remap[v] = labels.len();
                labels.push(self.labels[v]);
                succ.push(Vec::new());
            }
        }
        for v in 0..n {
            if !alive[v] {
                continue;
            }
            for &c in &self.children[v] {
                if alive[c] {
                    succ[remap[v]].push(remap[c]);
                }
            }
        }
        let kripke = Kripke::new(self.alphabet.clone(), labels, succ, remap[self.root]);
        crate::paths::exists_path(&kripke, formula)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sl_ltl::parse;

    fn sigma() -> Alphabet {
        Alphabet::ab()
    }

    fn sym(name: &str) -> Symbol {
        sigma().symbol(name).unwrap()
    }

    /// Root a; child 0 continues all-a, child 1 continues all-b.
    fn two_branch() -> RegularTree {
        RegularTree::new(
            sigma(),
            vec![sym("a"), sym("a"), sym("b")],
            vec![vec![1, 2], vec![1], vec![2]],
            0,
        )
    }

    #[test]
    fn uncut_prefix_is_total() {
        let p = RegularPrefix::from_tree(&two_branch());
        assert!(!p.is_non_total());
        assert!(!p.is_finite_depth());
        assert!(p.is_prefix_of(&two_branch()));
    }

    #[test]
    fn full_truncation_is_finite_depth() {
        // Cut both depth-1 children: a finite-depth, non-total prefix.
        let t = two_branch();
        let p = RegularPrefix::cut(&t, 1, &[vec![0], vec![1]]);
        assert!(p.is_non_total());
        assert!(p.is_finite_depth());
        assert!(p.is_prefix_of(&t));
    }

    #[test]
    fn single_cut_keeps_infinite_branch() {
        // Cut only the right child: the all-a branch stays infinite.
        let t = two_branch();
        let p = RegularPrefix::cut(&t, 1, &[vec![1]]);
        assert!(p.is_non_total(), "has the cut leaf");
        assert!(!p.is_finite_depth(), "keeps an infinite branch");
        assert!(p.is_prefix_of(&t));
        // The kept branch is all-a.
        assert!(p.exists_infinite_path(&parse(&sigma(), "G a").unwrap()));
        assert!(!p.exists_infinite_path(&parse(&sigma(), "F b").unwrap()));
    }

    #[test]
    fn prefix_rejects_wrong_labels_and_widths() {
        let t = two_branch();
        let p = RegularPrefix::cut(&t, 1, &[vec![1]]);
        // Same shape but the kept branch is all-b: labels differ.
        let other = RegularTree::new(
            sigma(),
            vec![sym("a"), sym("b"), sym("b")],
            vec![vec![1, 2], vec![1], vec![2]],
            0,
        );
        assert!(!p.is_prefix_of(&other));
        // A unary tree: the internal root has width 2 in the prefix.
        let unary = RegularTree::constant(sigma(), sym("a"), 1);
        assert!(!p.is_prefix_of(&unary));
    }

    #[test]
    fn completion_extends_the_prefix() {
        let t = two_branch();
        let p = RegularPrefix::cut(&t, 1, &[vec![1]]);
        let z = p.complete(&RegularTree::constant(sigma(), sym("a"), 1), 1);
        assert!(p.is_prefix_of(&z));
        // The completed right branch is now all-a below the b node.
        assert_eq!(z.label_at(&[1]), Some(sym("b")));
        assert_eq!(z.label_at(&[1, 0]), Some(sym("a")));
        assert_eq!(z.label_at(&[1, 0, 0]), Some(sym("a")));
        // The left branch is untouched.
        assert_eq!(z.label_at(&[0, 0]), Some(sym("a")));
    }

    #[test]
    fn completion_of_total_prefix_is_the_tree() {
        let t = two_branch();
        let p = RegularPrefix::from_tree(&t);
        let z = p.complete(&RegularTree::constant(sigma(), sym("b"), 1), 1);
        assert!(z.denotes_same_tree(&t));
    }

    #[test]
    fn deeper_cuts() {
        let t = two_branch();
        // Unroll to depth 2, cut below the left branch at depth 2.
        let p = RegularPrefix::cut(&t, 2, &[vec![0, 0]]);
        assert!(p.is_non_total());
        assert!(!p.is_finite_depth()); // right branch alive
        assert!(p.is_prefix_of(&t));
        // The surviving infinite paths all end in b^ω.
        assert!(p.exists_infinite_path(&parse(&sigma(), "F (G b)").unwrap()));
        assert!(!p.exists_infinite_path(&parse(&sigma(), "G a").unwrap()));
    }

    #[test]
    fn cut_at_root_gives_singleton() {
        let t = two_branch();
        let p = RegularPrefix::cut(&t, 0, &[vec![]]);
        assert!(p.is_non_total());
        assert!(p.is_finite_depth());
        assert!(p.is_prefix_of(&t));
        // Completing the bare-root prefix with constant-b gives root a
        // over all-b — which is in q3a territory.
        let z = p.complete(&RegularTree::constant(sigma(), sym("b"), 2), 2);
        assert_eq!(z.label_at(&[]), Some(sym("a")));
        assert_eq!(z.label_at(&[0]), Some(sym("b")));
    }

    #[test]
    #[should_panic(expected = "cut path not in the tree")]
    fn invalid_cut_path_rejected() {
        let t = two_branch();
        let _ = RegularPrefix::cut(&t, 2, &[vec![5]]);
    }
}
