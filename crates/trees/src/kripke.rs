//! Kripke structures: the finite generators of total trees.
//!
//! The branching-time framework interprets properties over total trees;
//! the trees that arise in practice are unwindings of finite
//! state-transition graphs. A [`Kripke`] structure here labels each
//! state with one alphabet symbol (matching the workspace's convention
//! that atomic propositions are the symbols of Σ), and every state has
//! at least one successor so unwindings are total.

use sl_omega::{Alphabet, Symbol};

/// A finite Kripke structure with symbol-labeled states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Kripke {
    alphabet: Alphabet,
    labels: Vec<Symbol>,
    succ: Vec<Vec<usize>>,
    initial: usize,
}

impl Kripke {
    /// Builds a structure.
    ///
    /// # Panics
    ///
    /// Panics if there are no states, lengths mismatch, a successor or
    /// label is out of range, some state has no successor, or `initial`
    /// is out of range.
    #[must_use]
    pub fn new(
        alphabet: Alphabet,
        labels: Vec<Symbol>,
        succ: Vec<Vec<usize>>,
        initial: usize,
    ) -> Self {
        let n = labels.len();
        assert!(n > 0, "need at least one state");
        assert_eq!(succ.len(), n, "successor list length mismatch");
        assert!(initial < n, "initial state out of range");
        for &label in &labels {
            assert!(label.index() < alphabet.len(), "label out of alphabet");
        }
        for (state, outs) in succ.iter().enumerate() {
            assert!(!outs.is_empty(), "state {state} has no successors");
            for &t in outs {
                assert!(t < n, "successor out of range");
            }
        }
        Kripke {
            alphabet,
            labels,
            succ,
            initial,
        }
    }

    /// The alphabet.
    #[must_use]
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Number of states.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Always false (at least one state).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The initial state.
    #[must_use]
    pub fn initial(&self) -> usize {
        self.initial
    }

    /// The label of a state.
    #[must_use]
    pub fn label(&self, state: usize) -> Symbol {
        self.labels[state]
    }

    /// Successors of a state (nonempty).
    #[must_use]
    pub fn successors(&self, state: usize) -> &[usize] {
        &self.succ[state]
    }

    /// States reachable from the initial state.
    #[must_use]
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.len()];
        seen[self.initial] = true;
        let mut stack = vec![self.initial];
        while let Some(s) = stack.pop() {
            for &t in &self.succ[s] {
                if !seen[t] {
                    seen[t] = true;
                    stack.push(t);
                }
            }
        }
        seen
    }

    /// A copy rooted at a different initial state.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    #[must_use]
    pub fn rooted_at(&self, state: usize) -> Kripke {
        assert!(state < self.len(), "state out of range");
        let mut out = self.clone();
        out.initial = state;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sigma() -> Alphabet {
        Alphabet::ab()
    }

    /// Two states: 0 labeled a loops to itself and to 1; 1 labeled b
    /// loops to itself.
    fn simple() -> Kripke {
        let s = sigma();
        let a = s.symbol("a").unwrap();
        let b = s.symbol("b").unwrap();
        Kripke::new(s, vec![a, b], vec![vec![0, 1], vec![1]], 0)
    }

    #[test]
    fn accessors() {
        let k = simple();
        assert_eq!(k.len(), 2);
        assert_eq!(k.initial(), 0);
        assert_eq!(k.label(1), sigma().symbol("b").unwrap());
        assert_eq!(k.successors(0), &[0, 1]);
    }

    #[test]
    fn reachability() {
        let k = simple();
        assert_eq!(k.reachable(), vec![true, true]);
        let k1 = k.rooted_at(1);
        assert_eq!(k1.reachable(), vec![false, true]);
    }

    #[test]
    #[should_panic(expected = "has no successors")]
    fn totality_enforced() {
        let s = sigma();
        let a = s.symbol("a").unwrap();
        let _ = Kripke::new(s, vec![a], vec![vec![]], 0);
    }

    #[test]
    #[should_panic(expected = "initial state out of range")]
    fn initial_checked() {
        let s = sigma();
        let a = s.symbol("a").unwrap();
        let _ = Kripke::new(s, vec![a], vec![vec![0]], 3);
    }
}
