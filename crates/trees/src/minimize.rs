//! Bisimulation minimization of regular trees.
//!
//! Two graph nodes of a [`RegularTree`] denote the same subtree iff they
//! have equal labels, equal branching widths, and pairwise-equivalent
//! children — the coarsest such relation is computed by partition
//! refinement, and quotienting by it yields the unique minimal
//! representation of the denoted tree. Minimization gives a canonical
//! form: two regular trees denote the same total tree iff their
//! minimizations are isomorphic with matched roots (for deterministic
//! ordered trees, isomorphism is just equality of the reachable
//! renumbered graphs).

use crate::regular::RegularTree;

/// The coarsest subtree-equivalence on graph nodes: `class[v]` is the
/// class index of node `v`.
#[must_use]
pub fn subtree_classes(tree: &RegularTree) -> Vec<usize> {
    let n = tree.num_graph_nodes();
    // Initial partition: by (label, width).
    let mut class: Vec<usize> = {
        let mut keys: Vec<(u16, usize)> = (0..n)
            .map(|v| (tree.label(v).0, tree.children(v).len()))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        keys.iter_mut()
            .map(|k| sorted.binary_search(k).expect("present"))
            .collect()
    };
    // Refine until stable: signature = (class, classes of children).
    loop {
        let signatures: Vec<(usize, Vec<usize>)> = (0..n)
            .map(|v| {
                (
                    class[v],
                    tree.children(v).iter().map(|&c| class[c]).collect(),
                )
            })
            .collect();
        let mut sorted = signatures.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let next: Vec<usize> = signatures
            .iter()
            .map(|s| sorted.binary_search(s).expect("present"))
            .collect();
        if next == class {
            return class;
        }
        class = next;
    }
}

/// The minimal regular-tree representation of the denoted tree: one
/// graph node per reachable subtree class.
#[must_use]
pub fn minimize(tree: &RegularTree) -> RegularTree {
    let class = subtree_classes(tree);
    let n = tree.num_graph_nodes();
    // Representative node per class (first occurrence), restricted to
    // classes reachable from the root.
    let mut reachable_classes: Vec<usize> = Vec::new();
    let mut rep_of: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    let mut stack = vec![tree.root()];
    let mut seen = vec![false; n];
    seen[tree.root()] = true;
    while let Some(v) = stack.pop() {
        let c = class[v];
        if let std::collections::hash_map::Entry::Vacant(entry) = rep_of.entry(c) {
            entry.insert(v);
            reachable_classes.push(c);
        }
        for &child in tree.children(v) {
            if !seen[child] {
                seen[child] = true;
                stack.push(child);
            }
        }
    }
    reachable_classes.sort_unstable();
    let index_of = |c: usize| reachable_classes.binary_search(&c).expect("reachable");
    let labels: Vec<sl_omega::Symbol> = reachable_classes
        .iter()
        .map(|&c| tree.label(rep_of[&c]))
        .collect();
    let children: Vec<Vec<usize>> = reachable_classes
        .iter()
        .map(|&c| {
            tree.children(rep_of[&c])
                .iter()
                .map(|&child| index_of(class[child]))
                .collect()
        })
        .collect();
    RegularTree::new(
        tree.alphabet().clone(),
        labels,
        children,
        index_of(class[tree.root()]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sl_omega::Alphabet;

    fn sigma() -> Alphabet {
        Alphabet::ab()
    }

    fn sym(name: &str) -> sl_omega::Symbol {
        sigma().symbol(name).unwrap()
    }

    #[test]
    fn redundant_representation_collapses() {
        // Two nodes both denoting the constant-a tree.
        let bloated = RegularTree::new(
            sigma(),
            vec![sym("a"), sym("a")],
            vec![vec![1], vec![0]],
            0,
        );
        let minimal = minimize(&bloated);
        assert_eq!(minimal.num_graph_nodes(), 1);
        assert!(minimal.denotes_same_tree(&bloated));
    }

    #[test]
    fn distinct_subtrees_stay_distinct() {
        // Root a with an all-a and an all-b branch: 3 genuinely
        // different subtrees.
        let t = RegularTree::new(
            sigma(),
            vec![sym("a"), sym("a"), sym("b")],
            vec![vec![1, 2], vec![1], vec![2]],
            0,
        );
        let m = minimize(&t);
        assert_eq!(m.num_graph_nodes(), 3);
        assert!(m.denotes_same_tree(&t));
    }

    #[test]
    fn unreachable_nodes_dropped() {
        let t = RegularTree::new(
            sigma(),
            vec![sym("a"), sym("b")],
            vec![vec![0], vec![1]], // node 1 unreachable from root 0
            0,
        );
        let m = minimize(&t);
        assert_eq!(m.num_graph_nodes(), 1);
        assert!(m.denotes_same_tree(&t));
    }

    #[test]
    fn minimization_is_canonical_for_equal_trees() {
        // Two different representations of a (ab)^ω spine: minimal
        // forms have the same size and denote the same tree.
        let one = RegularTree::new(
            sigma(),
            vec![sym("a"), sym("b")],
            vec![vec![1], vec![0]],
            0,
        );
        let two = RegularTree::new(
            sigma(),
            vec![sym("a"), sym("b"), sym("a"), sym("b")],
            vec![vec![1], vec![2], vec![3], vec![0]],
            0,
        );
        let m1 = minimize(&one);
        let m2 = minimize(&two);
        assert!(one.denotes_same_tree(&two));
        assert_eq!(m1.num_graph_nodes(), m2.num_graph_nodes());
        assert!(m1.denotes_same_tree(&m2));
    }

    #[test]
    fn minimization_preserves_ctl_properties() {
        use crate::ctl::parse_ctl;
        let s = sigma();
        for t in crate::regular::enumerate_regular_trees(&s, 2, 2) {
            let m = minimize(&t);
            assert!(m.denotes_same_tree(&t));
            for text in ["AF b", "EG a", "AGF a", "EFG b"] {
                let f = parse_ctl(&s, text).unwrap();
                assert_eq!(m.satisfies(&f), t.satisfies(&f), "{text} on {t:?}");
            }
        }
    }

    #[test]
    fn widths_separate_classes() {
        // Same labels everywhere but different widths cannot merge.
        let t = RegularTree::new(
            sigma(),
            vec![sym("a"), sym("a")],
            vec![vec![1, 1], vec![1]],
            0,
        );
        let m = minimize(&t);
        assert_eq!(m.num_graph_nodes(), 2);
    }
}
