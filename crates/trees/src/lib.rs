//! # sl-trees
//!
//! The branching-time framework of Manolios & Trefler's *A
//! Lattice-Theoretic Characterization of Safety and Liveness*
//! (PODC 2003), Section 4: labeled trees with the paper's concatenation
//! and prefix order (Definitions 1–4), regular total trees as the
//! finitely-representable skeleton of `A_tot`, Kripke structures, a CTL
//! model checker extended with the CTL* limit operators the paper's
//! examples need, LTL path quantification via Büchi products, and the
//! two branching-time closures `ncl` and `fcl` (Definitions 5–6) with
//! bounded checkers and absolute path-based refutations.
//!
//! ```
//! use sl_omega::Alphabet;
//! use sl_trees::{parse_ctl, qexamples};
//!
//! let sigma = Alphabet::ab();
//! // The paper's recurring witness: one all-a path, one all-b path.
//! let witness = qexamples::two_path_witness(&sigma);
//! assert!(witness.satisfies(&parse_ctl(&sigma, "EG a")?));
//! assert!(!witness.satisfies(&parse_ctl(&sigma, "AGF a")?));
//! # Ok::<(), sl_trees::CtlParseError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod closures;
pub mod ctl;
pub mod finite;
pub mod kripke;
pub mod minimize;
pub mod paths;
pub mod prefix;
pub mod product;
pub mod qexamples;
pub mod regular;

pub use closures::{
    fcl_contains_bounded, fcl_refuted_by_path, ncl_contains_bounded, ncl_refuted_by_path,
    nontotal_prefixes, try_fcl_contains_bounded, try_ncl_contains_bounded, try_nontotal_prefixes,
    Refutation,
};
pub use ctl::{check, parse_ctl, satisfies, Ctl, CtlParseError};
pub use finite::{FiniteTree, Node, NotPrefixClosed};
pub use kripke::Kripke;
pub use minimize::{minimize, subtree_classes};
pub use paths::{all_paths, exists_accepted_path, exists_path};
pub use prefix::RegularPrefix;
pub use product::{counter_product, CounterProduct};
pub use qexamples::{examples as q_examples, two_path_witness, QExample};
pub use regular::{enumerate_regular_trees, RegularTree};
