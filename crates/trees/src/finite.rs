//! Finite labeled trees with the paper's concatenation and prefix order
//! (Section 4.1, Definitions 1–4).
//!
//! A tree is a pair `(W, w)` where `W ⊆ ℕ*` is prefix-closed and
//! `w : W → Σ` labels the nodes. Concatenation `w·x` overlays `x` on
//! `w`, keeping only the parts of `x` that grow through *leaves* of `w`;
//! the prefix order is `x ⊑ y` iff `xz = y` for some `z`.

use sl_omega::{Alphabet, Symbol};
use std::collections::BTreeMap;
use std::fmt;

/// A node of a tree: a path from the root, as child indices.
pub type Node = Vec<u32>;

/// The parent of a nonempty node.
#[must_use]
pub fn parent(node: &[u32]) -> Option<Node> {
    if node.is_empty() {
        None
    } else {
        Some(node[..node.len() - 1].to_vec())
    }
}

/// Whether `a` is a (weak) ancestor of `b` (the prefix order on ℕ*).
#[must_use]
pub fn is_ancestor(a: &[u32], b: &[u32]) -> bool {
    b.len() >= a.len() && b[..a.len()] == *a
}

/// A finite Σ-labeled tree: a prefix-closed finite set of nodes with a
/// label each. The empty tree (`W = ∅`) is allowed.
///
/// # Examples
///
/// ```
/// use sl_omega::Alphabet;
/// use sl_trees::FiniteTree;
///
/// let sigma = Alphabet::ab();
/// let a = sigma.symbol("a").unwrap();
/// let b = sigma.symbol("b").unwrap();
/// // Root labeled a with two children labeled b.
/// let t = FiniteTree::from_entries(&[
///     (vec![], a),
///     (vec![0], b),
///     (vec![1], b),
/// ]).unwrap();
/// assert_eq!(t.len(), 3);
/// assert!(t.is_leaf(&[0]));
/// assert!(!t.is_leaf(&[]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FiniteTree {
    nodes: BTreeMap<Node, Symbol>,
}

/// Error when a node set is not prefix-closed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotPrefixClosed {
    /// A node whose parent is missing.
    pub node: Node,
}

impl fmt::Display for NotPrefixClosed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node {:?} present without its parent", self.node)
    }
}

impl std::error::Error for NotPrefixClosed {}

impl FiniteTree {
    /// The empty tree.
    #[must_use]
    pub fn empty() -> Self {
        FiniteTree {
            nodes: BTreeMap::new(),
        }
    }

    /// A single labeled root.
    #[must_use]
    pub fn singleton(label: Symbol) -> Self {
        let mut nodes = BTreeMap::new();
        nodes.insert(Vec::new(), label);
        FiniteTree { nodes }
    }

    /// Builds a tree from `(node, label)` entries.
    ///
    /// # Errors
    ///
    /// Returns [`NotPrefixClosed`] if some non-root node's parent is
    /// missing.
    pub fn from_entries(entries: &[(Node, Symbol)]) -> Result<Self, NotPrefixClosed> {
        let nodes: BTreeMap<Node, Symbol> = entries.iter().cloned().collect();
        for node in nodes.keys() {
            if let Some(p) = parent(node) {
                if !nodes.contains_key(&p) {
                    return Err(NotPrefixClosed { node: node.clone() });
                }
            }
        }
        Ok(FiniteTree { nodes })
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The label of a node.
    #[must_use]
    pub fn label(&self, node: &[u32]) -> Option<Symbol> {
        self.nodes.get(node).copied()
    }

    /// Whether the node is present.
    #[must_use]
    pub fn contains(&self, node: &[u32]) -> bool {
        self.nodes.contains_key(node)
    }

    /// Iterates over `(node, label)` pairs in lexicographic node order.
    pub fn iter(&self) -> impl Iterator<Item = (&Node, Symbol)> + '_ {
        self.nodes.iter().map(|(n, &l)| (n, l))
    }

    /// The children of a node present in the tree.
    #[must_use]
    pub fn children(&self, node: &[u32]) -> Vec<Node> {
        // Children are node ++ [i]; scan the range of extensions.
        self.nodes
            .range(node.to_vec()..)
            .take_while(|(k, _)| is_ancestor(node, k))
            .filter(|(k, _)| k.len() == node.len() + 1)
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Definition 2: whether `node` is a leaf (present, with no proper
    /// extension in the tree).
    #[must_use]
    pub fn is_leaf(&self, node: &[u32]) -> bool {
        self.contains(node) && self.children(node).is_empty()
    }

    /// All leaves.
    #[must_use]
    pub fn leaves(&self) -> Vec<Node> {
        self.nodes
            .keys()
            .filter(|n| self.children(n).is_empty())
            .cloned()
            .collect()
    }

    /// Depth: length of the longest node (0 for a bare root; `None` for
    /// the empty tree).
    #[must_use]
    pub fn depth(&self) -> Option<usize> {
        self.nodes.keys().map(Vec::len).max()
    }

    /// Whether the tree is total in the paper's sense: nonempty and
    /// every node has a successor. Finite trees always have leaves, so
    /// only the *empty* tree question matters: a finite tree is never
    /// total (this method exists for symmetry and documentation).
    #[must_use]
    pub fn is_total(&self) -> bool {
        !self.is_empty() && self.nodes.keys().all(|n| !self.is_leaf(n))
    }

    /// Definition 1: preliminary concatenation `w ⊙ x` — overlay `x`,
    /// keeping `w`'s labels on `W` and `x`'s labels on `X \ W`. This
    /// version can extend `w` at non-leaf nodes, which is why
    /// Definition 3 refines it.
    #[must_use]
    pub fn preliminary_concat(&self, x: &FiniteTree) -> FiniteTree {
        let mut nodes = self.nodes.clone();
        for (node, label) in &x.nodes {
            nodes.entry(node.clone()).or_insert(*label);
        }
        FiniteTree { nodes }
    }

    /// Definition 3: concatenation `w·x` — keep of `x` only the nodes
    /// already in `w` or growing through a leaf of `w`, then overlay.
    #[must_use]
    pub fn concat(&self, x: &FiniteTree) -> FiniteTree {
        // Note the strict reading of Definition 3 on the empty tree:
        // it has no nodes and no leaves, so no node of `x` survives the
        // restriction and `∅·x = ∅`. Consequently the empty tree is a
        // prefix only of itself — it is maximal-ly unhelpful, not a
        // least element (the closures in Section 4.2 are unaffected,
        // since every total tree has nonempty non-total prefixes).
        let leaves = self.leaves();
        let filtered: Vec<(Node, Symbol)> = x
            .nodes
            .iter()
            .filter(|(node, _)| {
                self.contains(node) || leaves.iter().any(|leaf| is_ancestor(leaf, node))
            })
            .map(|(n, &l)| (n.clone(), l))
            .collect();
        let x_restricted = FiniteTree {
            nodes: filtered.into_iter().collect(),
        };
        self.preliminary_concat(&x_restricted)
    }

    /// Definition 4: the prefix order `self ⊑ other` — some `z` with
    /// `self·z = other`. Decided by the characterization: the node sets
    /// nest, labels agree on the smaller, and every added node grows
    /// through a leaf of `self`. The empty tree is a prefix only of
    /// itself (see [`FiniteTree::concat`]).
    #[must_use]
    pub fn is_prefix_of(&self, other: &FiniteTree) -> bool {
        if self.is_empty() {
            return other.is_empty();
        }
        for (node, label) in &self.nodes {
            if other.label(node) != Some(*label) {
                return false;
            }
        }
        let leaves = self.leaves();
        for node in other.nodes.keys() {
            if self.contains(node) {
                continue;
            }
            if !leaves.iter().any(|leaf| is_ancestor(leaf, node)) {
                return false;
            }
        }
        true
    }

    /// Renders with alphabet names, one node per line.
    #[must_use]
    pub fn display(&self, alphabet: &Alphabet) -> String {
        let mut out = String::new();
        for (node, label) in self.iter() {
            let path: Vec<String> = node.iter().map(u32::to_string).collect();
            out.push_str(&format!("[{}] {}\n", path.join("."), alphabet.name(label)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sigma() -> Alphabet {
        Alphabet::ab()
    }

    fn sym(name: &str) -> Symbol {
        sigma().symbol(name).unwrap()
    }

    /// root(a) -> [0: b, 1: a].
    fn small() -> FiniteTree {
        FiniteTree::from_entries(&[(vec![], sym("a")), (vec![0], sym("b")), (vec![1], sym("a"))])
            .unwrap()
    }

    #[test]
    fn construction_and_queries() {
        let t = small();
        assert_eq!(t.len(), 3);
        assert_eq!(t.label(&[]), Some(sym("a")));
        assert_eq!(t.label(&[0]), Some(sym("b")));
        assert_eq!(t.label(&[7]), None);
        assert_eq!(t.children(&[]), vec![vec![0], vec![1]]);
        assert!(t.is_leaf(&[0]) && t.is_leaf(&[1]));
        assert!(!t.is_leaf(&[]));
        assert_eq!(t.leaves().len(), 2);
        assert_eq!(t.depth(), Some(1));
    }

    #[test]
    fn prefix_closure_enforced() {
        let err =
            FiniteTree::from_entries(&[(vec![], sym("a")), (vec![0, 0], sym("b"))]).unwrap_err();
        assert_eq!(err.node, vec![0, 0]);
        assert!(err.to_string().contains("without its parent"));
    }

    #[test]
    fn empty_and_singleton() {
        assert!(FiniteTree::empty().is_empty());
        assert_eq!(FiniteTree::empty().depth(), None);
        let s = FiniteTree::singleton(sym("a"));
        assert_eq!(s.len(), 1);
        assert!(s.is_leaf(&[]));
        assert!(!s.is_total()); // a finite nonempty tree has leaves
    }

    #[test]
    fn preliminary_concat_can_extend_internal_nodes() {
        // w = root(a)->child 0(b); x has node [1] (attaches at the
        // *internal* root). Preliminary concat keeps it; Definition 3
        // drops it.
        let w = FiniteTree::from_entries(&[(vec![], sym("a")), (vec![0], sym("b"))]).unwrap();
        let x = FiniteTree::from_entries(&[(vec![], sym("b")), (vec![1], sym("b"))]).unwrap();
        let pre = w.preliminary_concat(&x);
        assert!(pre.contains(&[1]));
        // Label on the shared root stays w's.
        assert_eq!(pre.label(&[]), Some(sym("a")));
        let proper = w.concat(&x);
        assert!(!proper.contains(&[1]), "x may only grow through leaves");
    }

    #[test]
    fn concat_grows_through_leaves() {
        let w = FiniteTree::from_entries(&[(vec![], sym("a")), (vec![0], sym("b"))]).unwrap();
        // x shares w's spine and adds children below the leaf [0].
        let x = FiniteTree::from_entries(&[
            (vec![], sym("b")),
            (vec![0], sym("a")),
            (vec![0, 0], sym("a")),
            (vec![0, 1], sym("b")),
        ])
        .unwrap();
        let wx = w.concat(&x);
        assert_eq!(wx.len(), 4);
        // w's labels win on W.
        assert_eq!(wx.label(&[]), Some(sym("a")));
        assert_eq!(wx.label(&[0]), Some(sym("b")));
        // x's labels appear on the new nodes.
        assert_eq!(wx.label(&[0, 0]), Some(sym("a")));
        assert_eq!(wx.label(&[0, 1]), Some(sym("b")));
    }

    #[test]
    fn concat_with_empty() {
        let t = small();
        // z = ∅ contributes nothing: x·∅ = x (reflexivity witness).
        assert_eq!(t.concat(&FiniteTree::empty()), t);
        // Strict Definition 3: the empty tree has no leaves, so nothing
        // of t survives and ∅·t = ∅.
        assert_eq!(FiniteTree::empty().concat(&t), FiniteTree::empty());
    }

    #[test]
    fn prefix_reflexive_and_empty_isolated() {
        let t = small();
        assert!(t.is_prefix_of(&t));
        // ∅ ⊑ y only for y = ∅ under the strict reading.
        assert!(!FiniteTree::empty().is_prefix_of(&t));
        assert!(FiniteTree::empty().is_prefix_of(&FiniteTree::empty()));
        assert!(!t.is_prefix_of(&FiniteTree::empty()));
    }

    #[test]
    fn prefix_matches_concat_witness() {
        // x ⊑ x·z for all sampled x, z; and the result's label set is
        // consistent.
        let w = small();
        let z = FiniteTree::from_entries(&[
            (vec![], sym("b")),
            (vec![0], sym("a")),
            (vec![0, 0], sym("b")),
            (vec![1], sym("b")),
            (vec![1, 0], sym("a")),
        ])
        .unwrap();
        let wz = w.concat(&z);
        assert!(w.is_prefix_of(&wz));
    }

    #[test]
    fn prefix_rejects_label_change() {
        let t = small();
        let mut relabeled = t.clone();
        relabeled.nodes.insert(vec![0], sym("a"));
        assert!(!t.is_prefix_of(&relabeled));
    }

    #[test]
    fn prefix_rejects_internal_growth() {
        // u = root with child 0 and child 1 (so the root is internal);
        // v = u plus child 2 of the root: attaches at an internal node,
        // so u is NOT a prefix of v (only leaves may grow).
        let u = small();
        let v = FiniteTree::from_entries(&[
            (vec![], sym("a")),
            (vec![0], sym("b")),
            (vec![1], sym("a")),
            (vec![2], sym("b")),
        ])
        .unwrap();
        assert!(!u.is_prefix_of(&v));
    }

    #[test]
    fn prefix_is_antisymmetric_on_samples() {
        let u = small();
        let v = u.concat(
            &FiniteTree::from_entries(&[
                (vec![], sym("a")),
                (vec![0], sym("a")),
                (vec![0, 0], sym("a")),
            ])
            .unwrap(),
        );
        assert!(u.is_prefix_of(&v));
        assert!(!v.is_prefix_of(&u));
        assert_ne!(u, v);
    }

    #[test]
    fn prefix_is_transitive_on_samples() {
        let u = FiniteTree::singleton(sym("a"));
        let v = small(); // extends u at the root-leaf
        let w = v.concat(
            &FiniteTree::from_entries(&[
                (vec![], sym("a")),
                (vec![0], sym("b")),
                (vec![0, 0], sym("b")),
            ])
            .unwrap(),
        );
        assert!(u.is_prefix_of(&v));
        assert!(v.is_prefix_of(&w));
        assert!(u.is_prefix_of(&w));
    }

    #[test]
    fn left_compatibility_of_concat() {
        // Paper: x ⊑ y implies w·x ⊑ w·y.
        let w = FiniteTree::from_entries(&[(vec![], sym("a")), (vec![0], sym("b"))]).unwrap();
        let x = FiniteTree::from_entries(&[(vec![], sym("b")), (vec![0], sym("a"))]).unwrap();
        let y = x.concat(
            &FiniteTree::from_entries(&[
                (vec![], sym("b")),
                (vec![0], sym("a")),
                (vec![0, 0], sym("b")),
            ])
            .unwrap(),
        );
        assert!(x.is_prefix_of(&y));
        assert!(w.concat(&x).is_prefix_of(&w.concat(&y)));
    }

    #[test]
    fn ancestor_helpers() {
        assert!(is_ancestor(&[], &[0, 1]));
        assert!(is_ancestor(&[0], &[0, 1]));
        assert!(!is_ancestor(&[1], &[0, 1]));
        assert_eq!(parent(&[0, 1]), Some(vec![0]));
        assert_eq!(parent(&[]), None);
    }

    #[test]
    fn display_lists_nodes() {
        let s = sigma();
        let text = small().display(&s);
        assert!(text.contains("[] a"));
        assert!(text.contains("[0] b"));
    }
}
