//! CTL (plus the four limit operators of CTL* that the paper's examples
//! need) with a parser and a fixpoint model checker on Kripke
//! structures.
//!
//! The paper's Section 4.3 examples q0–q6 use plain CTL (`AF`, `EF`)
//! **and** the CTL* shapes `A(FG ¬a)`, `E(FG ¬a)`, `A(GF a)`,
//! `E(GF a)`. The latter four are not CTL, but over finite Kripke
//! structures each is decidable by a direct graph criterion:
//! `E GF p` holds iff a reachable cycle contains a `p`-state, and
//! `E FG p` iff a reachable cycle lies entirely in `p`-states; the `A`
//! forms are their duals. The AST carries them as first-class operators.
//!
//! CTL is bisimulation-invariant, so checking a formula on a Kripke
//! structure decides it on the structure's unwinding — which is how
//! [`crate::RegularTree`] evaluates branching-time properties.

use crate::kripke::Kripke;
use sl_omega::Alphabet;
use std::fmt;

/// A CTL (plus limit operators) formula over alphabet-symbol atoms.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Ctl {
    /// Truth.
    True,
    /// Falsity.
    False,
    /// "The current node is labeled with this symbol."
    Ap(sl_omega::Symbol),
    /// Negation.
    Not(Box<Ctl>),
    /// Conjunction.
    And(Box<Ctl>, Box<Ctl>),
    /// Disjunction.
    Or(Box<Ctl>, Box<Ctl>),
    /// Implication.
    Implies(Box<Ctl>, Box<Ctl>),
    /// On some successor.
    Ex(Box<Ctl>),
    /// On every successor.
    Ax(Box<Ctl>),
    /// On some path, eventually.
    Ef(Box<Ctl>),
    /// On every path, eventually.
    Af(Box<Ctl>),
    /// On some path, always.
    Eg(Box<Ctl>),
    /// On every path, always.
    Ag(Box<Ctl>),
    /// `E[p U q]`.
    Eu(Box<Ctl>, Box<Ctl>),
    /// `A[p U q]`.
    Au(Box<Ctl>, Box<Ctl>),
    /// CTL* limit operator `E GF p`: some path visits `p` infinitely
    /// often. `p` must be propositional.
    Egf(Box<Ctl>),
    /// `E FG p`: some path is eventually always `p`. `p` propositional.
    Efg(Box<Ctl>),
    /// `A GF p`: every path visits `p` infinitely often.
    Agf(Box<Ctl>),
    /// `A FG p`: every path is eventually always `p`.
    Afg(Box<Ctl>),
}

impl Ctl {
    /// Whether the formula is propositional (no temporal operators) —
    /// required below the limit operators.
    #[must_use]
    pub fn is_propositional(&self) -> bool {
        match self {
            Ctl::True | Ctl::False | Ctl::Ap(_) => true,
            Ctl::Not(p) => p.is_propositional(),
            Ctl::And(p, q) | Ctl::Or(p, q) | Ctl::Implies(p, q) => {
                p.is_propositional() && q.is_propositional()
            }
            _ => false,
        }
    }
}

impl fmt::Display for Ctl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ctl::True => write!(f, "true"),
            Ctl::False => write!(f, "false"),
            Ctl::Ap(sym) => write!(f, "p{}", sym.0),
            Ctl::Not(p) => write!(f, "!({p})"),
            Ctl::And(p, q) => write!(f, "({p}) & ({q})"),
            Ctl::Or(p, q) => write!(f, "({p}) | ({q})"),
            Ctl::Implies(p, q) => write!(f, "({p}) -> ({q})"),
            Ctl::Ex(p) => write!(f, "EX ({p})"),
            Ctl::Ax(p) => write!(f, "AX ({p})"),
            Ctl::Ef(p) => write!(f, "EF ({p})"),
            Ctl::Af(p) => write!(f, "AF ({p})"),
            Ctl::Eg(p) => write!(f, "EG ({p})"),
            Ctl::Ag(p) => write!(f, "AG ({p})"),
            Ctl::Eu(p, q) => write!(f, "E[({p}) U ({q})]"),
            Ctl::Au(p, q) => write!(f, "A[({p}) U ({q})]"),
            Ctl::Egf(p) => write!(f, "E GF ({p})"),
            Ctl::Efg(p) => write!(f, "E FG ({p})"),
            Ctl::Agf(p) => write!(f, "A GF ({p})"),
            Ctl::Afg(p) => write!(f, "A FG ({p})"),
        }
    }
}

/// Parse error for CTL formulas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtlParseError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for CtlParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ctl parse error: {}", self.message)
    }
}

impl std::error::Error for CtlParseError {}

/// Parses a CTL formula. Grammar mirrors the LTL parser with
/// quantifier-operator pairs: `EX EF EG AX AF AG` prefix operators,
/// `E[p U q]` / `A[p U q]`, and the limit forms `EGF EFG AGF AFG`
/// applied to propositional arguments.
///
/// # Errors
///
/// Returns [`CtlParseError`] on malformed input, unknown symbols, or a
/// non-propositional limit-operator argument.
pub fn parse_ctl(alphabet: &Alphabet, input: &str) -> Result<Ctl, CtlParseError> {
    let tokens: Vec<String> = tokenize(input)?;
    let mut parser = CtlParser {
        tokens,
        pos: 0,
        alphabet,
    };
    let formula = parser.implies()?;
    if parser.pos != parser.tokens.len() {
        return Err(CtlParseError {
            message: format!("trailing input at token {}", parser.pos),
        });
    }
    Ok(formula)
}

fn tokenize(input: &str) -> Result<Vec<String>, CtlParseError> {
    let mut out = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c.is_alphanumeric() || c == '_' {
            let mut word = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_alphanumeric() || c == '_' {
                    word.push(c);
                    chars.next();
                } else {
                    break;
                }
            }
            out.push(word);
        } else if "()[]!&|".contains(c) {
            chars.next();
            out.push(c.to_string());
        } else if c == '-' {
            chars.next();
            if chars.peek() == Some(&'>') {
                chars.next();
                out.push("->".to_string());
            } else {
                return Err(CtlParseError {
                    message: "expected '->'".into(),
                });
            }
        } else {
            return Err(CtlParseError {
                message: format!("unexpected character {c:?}"),
            });
        }
    }
    Ok(out)
}

struct CtlParser<'a> {
    tokens: Vec<String>,
    pos: usize,
    alphabet: &'a Alphabet,
}

impl CtlParser<'_> {
    fn peek(&self) -> Option<&str> {
        self.tokens.get(self.pos).map(String::as_str)
    }

    fn bump(&mut self) -> Option<String> {
        let t = self.tokens.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn expect(&mut self, token: &str) -> Result<(), CtlParseError> {
        if self.bump().as_deref() == Some(token) {
            Ok(())
        } else {
            Err(CtlParseError {
                message: format!("expected {token:?}"),
            })
        }
    }

    fn implies(&mut self) -> Result<Ctl, CtlParseError> {
        let lhs = self.or()?;
        if self.peek() == Some("->") {
            self.bump();
            let rhs = self.implies()?;
            Ok(Ctl::Implies(Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn or(&mut self) -> Result<Ctl, CtlParseError> {
        let mut lhs = self.and()?;
        while self.peek() == Some("|") {
            self.bump();
            let rhs = self.and()?;
            lhs = Ctl::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and(&mut self) -> Result<Ctl, CtlParseError> {
        let mut lhs = self.unary()?;
        while self.peek() == Some("&") {
            self.bump();
            let rhs = self.unary()?;
            lhs = Ctl::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn limit(&mut self, make: fn(Box<Ctl>) -> Ctl) -> Result<Ctl, CtlParseError> {
        let arg = self.unary()?;
        if !arg.is_propositional() {
            return Err(CtlParseError {
                message: "limit operators need a propositional argument".into(),
            });
        }
        Ok(make(Box::new(arg)))
    }

    fn unary(&mut self) -> Result<Ctl, CtlParseError> {
        match self.peek() {
            Some("!") => {
                self.bump();
                Ok(Ctl::Not(Box::new(self.unary()?)))
            }
            Some("EX") => {
                self.bump();
                Ok(Ctl::Ex(Box::new(self.unary()?)))
            }
            Some("AX") => {
                self.bump();
                Ok(Ctl::Ax(Box::new(self.unary()?)))
            }
            Some("EF") => {
                self.bump();
                Ok(Ctl::Ef(Box::new(self.unary()?)))
            }
            Some("AF") => {
                self.bump();
                Ok(Ctl::Af(Box::new(self.unary()?)))
            }
            Some("EG") => {
                self.bump();
                Ok(Ctl::Eg(Box::new(self.unary()?)))
            }
            Some("AG") => {
                self.bump();
                Ok(Ctl::Ag(Box::new(self.unary()?)))
            }
            Some("EGF") => {
                self.bump();
                self.limit(Ctl::Egf)
            }
            Some("EFG") => {
                self.bump();
                self.limit(Ctl::Efg)
            }
            Some("AGF") => {
                self.bump();
                self.limit(Ctl::Agf)
            }
            Some("AFG") => {
                self.bump();
                self.limit(Ctl::Afg)
            }
            Some("E") | Some("A") => {
                let quant = self.bump().expect("peeked");
                self.expect("[")?;
                let lhs = self.implies()?;
                self.expect("U")?;
                let rhs = self.implies()?;
                self.expect("]")?;
                Ok(if quant == "E" {
                    Ctl::Eu(Box::new(lhs), Box::new(rhs))
                } else {
                    Ctl::Au(Box::new(lhs), Box::new(rhs))
                })
            }
            _ => self.atom(),
        }
    }

    fn atom(&mut self) -> Result<Ctl, CtlParseError> {
        match self.bump().as_deref() {
            Some("true") => Ok(Ctl::True),
            Some("false") => Ok(Ctl::False),
            Some("(") => {
                let inner = self.implies()?;
                self.expect(")")?;
                Ok(inner)
            }
            Some(word) => self
                .alphabet
                .symbol(word)
                .map(Ctl::Ap)
                .ok_or_else(|| CtlParseError {
                    message: format!("unknown symbol {word:?}"),
                }),
            None => Err(CtlParseError {
                message: "unexpected end of input".into(),
            }),
        }
    }
}

/// Model checks a formula, returning the set of states satisfying it.
#[must_use]
pub fn check(kripke: &Kripke, formula: &Ctl) -> Vec<bool> {
    let n = kripke.len();
    match formula {
        Ctl::True => vec![true; n],
        Ctl::False => vec![false; n],
        Ctl::Ap(sym) => (0..n).map(|s| kripke.label(s) == *sym).collect(),
        Ctl::Not(p) => check(kripke, p).into_iter().map(|b| !b).collect(),
        Ctl::And(p, q) => zip_with(check(kripke, p), check(kripke, q), |a, b| a && b),
        Ctl::Or(p, q) => zip_with(check(kripke, p), check(kripke, q), |a, b| a || b),
        Ctl::Implies(p, q) => zip_with(check(kripke, p), check(kripke, q), |a, b| !a || b),
        Ctl::Ex(p) => ex(kripke, &check(kripke, p)),
        Ctl::Ax(p) => {
            let vp = check(kripke, p);
            (0..n)
                .map(|s| kripke.successors(s).iter().all(|&t| vp[t]))
                .collect()
        }
        Ctl::Ef(p) => eu(kripke, &vec![true; n], &check(kripke, p)),
        Ctl::Eu(p, q) => eu(kripke, &check(kripke, p), &check(kripke, q)),
        Ctl::Eg(p) => eg(kripke, &check(kripke, p)),
        // Duals: AF p = ¬EG ¬p; AG p = ¬EF ¬p; A[p U q] = ¬(E[¬q U ¬p∧¬q] ∨ EG ¬q).
        Ctl::Af(p) => {
            let not_p: Vec<bool> = check(kripke, p).into_iter().map(|b| !b).collect();
            eg(kripke, &not_p).into_iter().map(|b| !b).collect()
        }
        Ctl::Ag(p) => {
            let not_p: Vec<bool> = check(kripke, p).into_iter().map(|b| !b).collect();
            eu(kripke, &vec![true; n], &not_p)
                .into_iter()
                .map(|b| !b)
                .collect()
        }
        Ctl::Au(p, q) => {
            let vp = check(kripke, p);
            let vq = check(kripke, q);
            let not_q: Vec<bool> = vq.iter().map(|b| !b).collect();
            let neither: Vec<bool> = (0..n).map(|s| !vp[s] && !vq[s]).collect();
            let bad1 = eu(kripke, &not_q, &neither);
            let bad2 = eg(kripke, &not_q);
            (0..n).map(|s| !bad1[s] && !bad2[s]).collect()
        }
        Ctl::Egf(p) => egf(kripke, &check(kripke, p)),
        Ctl::Efg(p) => efg(kripke, &check(kripke, p)),
        Ctl::Agf(p) => {
            let not_p: Vec<bool> = check(kripke, p).into_iter().map(|b| !b).collect();
            efg(kripke, &not_p).into_iter().map(|b| !b).collect()
        }
        Ctl::Afg(p) => {
            let not_p: Vec<bool> = check(kripke, p).into_iter().map(|b| !b).collect();
            egf(kripke, &not_p).into_iter().map(|b| !b).collect()
        }
    }
}

/// Whether the structure's initial state satisfies the formula — i.e.
/// whether the unwinding tree is in the property.
#[must_use]
pub fn satisfies(kripke: &Kripke, formula: &Ctl) -> bool {
    check(kripke, formula)[kripke.initial()]
}

fn zip_with(a: Vec<bool>, b: Vec<bool>, f: fn(bool, bool) -> bool) -> Vec<bool> {
    a.into_iter().zip(b).map(|(x, y)| f(x, y)).collect()
}

fn ex(kripke: &Kripke, vp: &[bool]) -> Vec<bool> {
    (0..kripke.len())
        .map(|s| kripke.successors(s).iter().any(|&t| vp[t]))
        .collect()
}

/// Least fixpoint for `E[p U q]`.
fn eu(kripke: &Kripke, vp: &[bool], vq: &[bool]) -> Vec<bool> {
    let mut sat: Vec<bool> = vq.to_vec();
    loop {
        let step = ex(kripke, &sat);
        let mut changed = false;
        for s in 0..kripke.len() {
            if !sat[s] && vp[s] && step[s] {
                sat[s] = true;
                changed = true;
            }
        }
        if !changed {
            return sat;
        }
    }
}

/// Greatest fixpoint for `EG p`.
fn eg(kripke: &Kripke, vp: &[bool]) -> Vec<bool> {
    let mut sat: Vec<bool> = vp.to_vec();
    loop {
        let step = ex(kripke, &sat);
        let mut changed = false;
        for s in 0..kripke.len() {
            if sat[s] && !step[s] {
                sat[s] = false;
                changed = true;
            }
        }
        if !changed {
            return sat;
        }
    }
}

/// `E GF p`: states from which some path visits `p`-states infinitely
/// often — i.e. states that can reach a cycle containing a `p`-state.
fn egf(kripke: &Kripke, vp: &[bool]) -> Vec<bool> {
    let n = kripke.len();
    // A p-state lies on a cycle iff it can reach itself in >= 1 step.
    let targets: Vec<usize> = (0..n)
        .filter(|&s| vp[s] && reaches(kripke, s, s, true))
        .collect();
    (0..n)
        .map(|s| targets.iter().any(|&t| reaches(kripke, s, t, false)))
        .collect()
}

/// `E FG p`: some path eventually stays in `p`-states — i.e. the state
/// reaches a cycle lying entirely within `p`-states.
fn efg(kripke: &Kripke, vp: &[bool]) -> Vec<bool> {
    let n = kripke.len();
    // Cycle within p-states: a p-state that can reach itself through
    // p-states only.
    let cores: Vec<usize> = (0..n)
        .filter(|&s| vp[s] && reaches_within(kripke, s, s, vp, true))
        .collect();
    // Any path to the core works (the prefix may leave p).
    (0..n)
        .map(|s| cores.iter().any(|&t| reaches(kripke, s, t, false)))
        .collect()
}

/// Whether `to` is reachable from `from` (requiring at least one step if
/// `proper`).
fn reaches(kripke: &Kripke, from: usize, to: usize, proper: bool) -> bool {
    reaches_within(kripke, from, to, &vec![true; kripke.len()], proper)
}

/// Reachability restricted to `allowed` states (intermediate nodes and
/// `to` must be allowed; `from` need not be).
fn reaches_within(kripke: &Kripke, from: usize, to: usize, allowed: &[bool], proper: bool) -> bool {
    if !proper && from == to {
        return true;
    }
    let mut seen = vec![false; kripke.len()];
    let mut stack: Vec<usize> = Vec::new();
    for &t in kripke.successors(from) {
        if allowed[t] {
            if t == to {
                return true;
            }
            if !seen[t] {
                seen[t] = true;
                stack.push(t);
            }
        }
    }
    while let Some(s) = stack.pop() {
        for &t in kripke.successors(s) {
            if allowed[t] {
                if t == to {
                    return true;
                }
                if !seen[t] {
                    seen[t] = true;
                    stack.push(t);
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sigma() -> Alphabet {
        Alphabet::ab()
    }

    /// 0(a) -> {0, 1}; 1(b) -> {1}.
    fn simple() -> Kripke {
        let s = sigma();
        let a = s.symbol("a").unwrap();
        let b = s.symbol("b").unwrap();
        Kripke::new(s, vec![a, b], vec![vec![0, 1], vec![1]], 0)
    }

    fn f(text: &str) -> Ctl {
        parse_ctl(&sigma(), text).unwrap()
    }

    #[test]
    fn propositional_and_next() {
        let k = simple();
        assert!(satisfies(&k, &f("a")));
        assert!(!satisfies(&k, &f("b")));
        assert!(satisfies(&k, &f("EX b")));
        assert!(satisfies(&k, &f("EX a")));
        assert!(!satisfies(&k, &f("AX b")));
        assert!(satisfies(&k.rooted_at(1), &f("AX b")));
    }

    #[test]
    fn eventually_and_always() {
        let k = simple();
        assert!(satisfies(&k, &f("EF b")));
        assert!(!satisfies(&k, &f("AF b"))); // the a-loop avoids b forever
        assert!(satisfies(&k, &f("EG a"))); // stay in the a-loop
        assert!(!satisfies(&k, &f("AG a")));
        assert!(satisfies(&k.rooted_at(1), &f("AG b")));
    }

    #[test]
    fn until_operators() {
        let k = simple();
        assert!(satisfies(&k, &f("E[a U b]")));
        assert!(!satisfies(&k, &f("A[a U b]")));
        assert!(satisfies(&k.rooted_at(1), &f("A[a U b]"))); // b holds now
    }

    #[test]
    fn au_requires_fulfillment_on_all_paths() {
        // 0(a) -> {1, 2}; 1(b) self-loop; 2(a) self-loop: A[a U b]
        // fails at 0 because the 2-loop never reaches b.
        let s = sigma();
        let a = s.symbol("a").unwrap();
        let b = s.symbol("b").unwrap();
        let k = Kripke::new(s, vec![a, b, a], vec![vec![1, 2], vec![1], vec![2]], 0);
        assert!(!satisfies(&k, &f("A[a U b]")));
        assert!(satisfies(&k, &f("E[a U b]")));
        // With the a-loop replaced by a path into b it holds.
        let s = sigma();
        let k = Kripke::new(
            s.clone(),
            vec![
                s.symbol("a").unwrap(),
                s.symbol("b").unwrap(),
                s.symbol("b").unwrap(),
            ],
            vec![vec![1, 2], vec![1], vec![2]],
            0,
        );
        assert!(satisfies(&k, &f("A[a U b]")));
    }

    #[test]
    fn limit_operators() {
        let k = simple();
        // From 0: the a-loop visits a infinitely often.
        assert!(satisfies(&k, &f("EGF a")));
        // Moving to 1 gives eventually-always b.
        assert!(satisfies(&k, &f("EFG b")));
        // Not all paths visit a infinitely often (drop to 1).
        assert!(!satisfies(&k, &f("AGF a")));
        // Not all paths are eventually all-b (stay in the a-loop).
        assert!(!satisfies(&k, &f("AFG b")));
        // From state 1 everything is b forever.
        assert!(satisfies(&k.rooted_at(1), &f("AFG b")));
        assert!(satisfies(&k.rooted_at(1), &f("AGF b")));
    }

    #[test]
    fn limit_needs_propositional_argument() {
        let err = parse_ctl(&sigma(), "EGF (EF a)").unwrap_err();
        assert!(err.message.contains("propositional"));
    }

    #[test]
    fn parser_precedence_and_errors() {
        assert_eq!(f("a & b -> a"), f("(a & b) -> a"));
        assert_eq!(f("!a | b"), f("(!a) | b"));
        assert!(parse_ctl(&sigma(), "E[a U").is_err());
        assert!(parse_ctl(&sigma(), "q").is_err());
        assert!(parse_ctl(&sigma(), "a a").is_err());
        assert!(parse_ctl(&sigma(), "a @ b").is_err());
    }

    #[test]
    fn duals_agree() {
        // AF p = !EG !p and AG p = !EF !p on all states of a sample
        // structure.
        let k = simple();
        for p in ["a", "b", "EX a"] {
            let af = check(&k, &f(&format!("AF ({p})")));
            let dual = check(&k, &f(&format!("!(EG (!({p})))")));
            assert_eq!(af, dual, "AF dual for {p}");
            let ag = check(&k, &f(&format!("AG ({p})")));
            let dual = check(&k, &f(&format!("!(EF (!({p})))")));
            assert_eq!(ag, dual, "AG dual for {p}");
        }
    }

    #[test]
    fn display_roundtrips() {
        for text in ["A[a U b]", "EGF a", "AG (a -> EX b)"] {
            let parsed = f(text);
            // Display uses raw symbol indices; just check it is nonempty
            // and re-displays stably.
            let shown = parsed.to_string();
            assert!(!shown.is_empty());
        }
    }
}
