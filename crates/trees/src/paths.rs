//! Path quantification over Kripke structures with LTL path formulas —
//! the bridge between the branching world and the linear-time machinery.
//!
//! `E φ` ("some path from the initial state satisfies the LTL formula
//! φ") is decided exactly by translating φ to a Büchi automaton
//! (`sl-ltl`), forming the product with the structure, and searching for
//! a reachable accepting cycle. `A φ` is `¬E ¬φ`. This gives exact
//! deciders for all the CTL* shapes the paper's Section 4.3 examples
//! use, and is cross-checked against the dedicated limit-operator
//! implementations in [`crate::ctl`].

use crate::kripke::Kripke;
use sl_buchi::Buchi;
use sl_ltl::{translate, Ltl};

/// Whether some path from the initial state satisfies the LTL formula.
#[must_use]
pub fn exists_path(kripke: &Kripke, formula: &Ltl) -> bool {
    let nba = translate(kripke.alphabet(), formula);
    exists_accepted_path(kripke, &nba)
}

/// Whether every path from the initial state satisfies the formula.
#[must_use]
pub fn all_paths(kripke: &Kripke, formula: &Ltl) -> bool {
    !exists_path(kripke, &formula.clone().not())
}

/// Whether some path's label word is accepted by the automaton.
#[must_use]
pub fn exists_accepted_path(kripke: &Kripke, nba: &Buchi) -> bool {
    let ns = kripke.len();
    let nq = nba.num_states();
    let n = ns * nq;
    let node = |s: usize, q: usize| s * nq + q;
    let succ = |v: usize| -> Vec<usize> {
        let (s, q) = (v / nq, v % nq);
        let sym = kripke.label(s);
        let mut out = Vec::new();
        for &qn in nba.successors(q, sym) {
            for &sn in kripke.successors(s) {
                out.push(node(sn, qn));
            }
        }
        out
    };
    // Forward reachability from (initial, nba initial).
    let start = node(kripke.initial(), nba.initial());
    let mut reach = vec![false; n];
    reach[start] = true;
    let mut stack = vec![start];
    while let Some(v) = stack.pop() {
        for w in succ(v) {
            if !reach[w] {
                reach[w] = true;
                stack.push(w);
            }
        }
    }
    // Accepting product node on a reachable cycle?
    // Reuse a small Tarjan here.
    let comps = sccs(n, &succ);
    let mut comp_size = vec![0usize; n];
    for &c in &comps {
        comp_size[c] += 1;
    }
    (0..n).any(|v| {
        reach[v] && nba.is_accepting(v % nq) && (comp_size[comps[v]] > 1 || succ(v).contains(&v))
    })
}

/// Component ids by iterative Tarjan over a successor function.
fn sccs(n: usize, succ: &dyn Fn(usize) -> Vec<usize>) -> Vec<usize> {
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut comp = vec![UNSET; n];
    let mut next = 0usize;
    let mut count = 0usize;
    enum Frame {
        Enter(usize),
        Resume(usize, Vec<usize>, usize),
    }
    for root in 0..n {
        if index[root] != UNSET {
            continue;
        }
        let mut work = vec![Frame::Enter(root)];
        while let Some(frame) = work.pop() {
            match frame {
                Frame::Enter(v) => {
                    index[v] = next;
                    low[v] = next;
                    next += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    work.push(Frame::Resume(v, succ(v), 0));
                }
                Frame::Resume(v, outs, mut i) => {
                    let mut descended = false;
                    while i < outs.len() {
                        let w = outs[i];
                        i += 1;
                        if index[w] == UNSET {
                            work.push(Frame::Resume(v, outs, i));
                            work.push(Frame::Enter(w));
                            descended = true;
                            break;
                        } else if on_stack[w] {
                            low[v] = low[v].min(index[w]);
                        }
                    }
                    if descended {
                        continue;
                    }
                    if low[v] == index[v] {
                        loop {
                            let w = stack.pop().expect("scc stack underflow");
                            on_stack[w] = false;
                            comp[w] = count;
                            if w == v {
                                break;
                            }
                        }
                        count += 1;
                    }
                    if let Some(Frame::Resume(parent, _, _)) = work.last() {
                        let parent = *parent;
                        low[parent] = low[parent].min(low[v]);
                    }
                }
            }
        }
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctl::{parse_ctl, satisfies};
    use crate::regular::enumerate_regular_trees;
    use sl_ltl::parse;
    use sl_omega::Alphabet;

    fn sigma() -> Alphabet {
        Alphabet::ab()
    }

    /// 0(a) -> {0, 1}; 1(b) -> {1}.
    fn simple() -> Kripke {
        let s = sigma();
        let a = s.symbol("a").unwrap();
        let b = s.symbol("b").unwrap();
        Kripke::new(s, vec![a, b], vec![vec![0, 1], vec![1]], 0)
    }

    #[test]
    fn exists_and_forall_basics() {
        let s = sigma();
        let k = simple();
        assert!(exists_path(&k, &parse(&s, "G a").unwrap()));
        assert!(exists_path(&k, &parse(&s, "F b").unwrap()));
        assert!(!all_paths(&k, &parse(&s, "F b").unwrap()));
        assert!(all_paths(&k, &parse(&s, "a").unwrap()));
        assert!(!exists_path(&k, &parse(&s, "G b").unwrap()));
        // Starting at 1 everything is b forever.
        assert!(all_paths(&k.rooted_at(1), &parse(&s, "G b").unwrap()));
    }

    #[test]
    fn limit_operators_agree_with_path_quantification() {
        // Differential: the dedicated graph algorithms for EGF/EFG/AGF/
        // AFG in the CTL checker must agree with the automaton-product
        // deciders on every 2-node-width-2 regular tree.
        let s = sigma();
        let gfa = parse(&s, "G F a").unwrap();
        let fga = parse(&s, "F G a").unwrap();
        for t in enumerate_regular_trees(&s, 2, 2) {
            let k = t.to_kripke();
            assert_eq!(
                satisfies(&k, &parse_ctl(&s, "EGF a").unwrap()),
                exists_path(&k, &gfa),
                "EGF mismatch on {t:?}"
            );
            assert_eq!(
                satisfies(&k, &parse_ctl(&s, "EFG a").unwrap()),
                exists_path(&k, &fga),
                "EFG mismatch on {t:?}"
            );
            assert_eq!(
                satisfies(&k, &parse_ctl(&s, "AGF a").unwrap()),
                all_paths(&k, &gfa),
                "AGF mismatch on {t:?}"
            );
            assert_eq!(
                satisfies(&k, &parse_ctl(&s, "AFG a").unwrap()),
                all_paths(&k, &fga),
                "AFG mismatch on {t:?}"
            );
        }
    }

    #[test]
    fn ctl_af_agrees_with_path_f() {
        // AF p on trees = A (F p) for propositional p: cross-check on a
        // universe of regular trees.
        let s = sigma();
        let fa = parse(&s, "F a").unwrap();
        let af = parse_ctl(&s, "AF a").unwrap();
        for t in enumerate_regular_trees(&s, 2, 2) {
            let k = t.to_kripke();
            assert_eq!(satisfies(&k, &af), all_paths(&k, &fa), "{t:?}");
        }
    }

    #[test]
    fn next_operator_through_product() {
        let s = sigma();
        let k = simple();
        assert!(exists_path(&k, &parse(&s, "X b").unwrap()));
        assert!(exists_path(&k, &parse(&s, "X a").unwrap()));
        assert!(!all_paths(&k, &parse(&s, "X b").unwrap()));
    }
}
