//! Counter-augmented Kripke products for the k-liveness reduction.
//!
//! `FG !bad` over all paths of a finite structure holds iff there is a
//! `k` such that no path visits a bad state more than `k` times. The
//! [`counter_product`] below is the structural half of that reduction:
//! every state is paired with a saturating visit counter, entering a
//! bad state bumps the counter, and the product's bad states are
//! exactly the saturated ones — so the liveness question becomes the
//! safety question `AG (counter < cap)` on the product.
//!
//! The product is built in full (reachability is the checker's job),
//! so its size is exactly predictable: `n * (cap + 1)` states and
//! `E * (cap + 1)` transitions for an `n`-state, `E`-edge original.

use crate::kripke::Kripke;

/// A counter-augmented product: the product structure, its saturated
/// (bad) states, and the projection back to the original.
#[derive(Debug, Clone)]
pub struct CounterProduct {
    /// The product Kripke structure; state `(s, c)` has the label of
    /// `s`.
    pub kripke: Kripke,
    /// Product states whose counter has saturated at `cap`, in
    /// increasing index order.
    pub bad: Vec<usize>,
    /// The saturation value the counters count up to.
    pub cap: usize,
}

impl CounterProduct {
    /// The product index of `(state, counter)`.
    #[must_use]
    pub fn state_id(&self, state: usize, counter: usize) -> usize {
        state * (self.cap + 1) + counter
    }

    /// The `(state, counter)` pair behind a product index.
    #[must_use]
    pub fn original(&self, id: usize) -> (usize, usize) {
        (id / (self.cap + 1), id % (self.cap + 1))
    }
}

/// Builds the counter-augmented product of `kripke` with a saturating
/// bad-visit counter.
///
/// Counters live in `{0..=cap}`. The initial product state is the
/// original initial state with its own badness already counted; taking
/// an edge into a bad state increments the counter (saturating at
/// `cap`). A path's counter reaches `cap` iff the path visits bad
/// states at least `cap` times.
///
/// # Panics
///
/// Panics if `cap` is zero or a bad index is out of range.
#[must_use]
pub fn counter_product(kripke: &Kripke, bad: &[usize], cap: usize) -> CounterProduct {
    assert!(cap > 0, "counter cap must be positive");
    let n = kripke.len();
    let mut is_bad = vec![false; n];
    for &b in bad {
        assert!(b < n, "bad state out of range");
        is_bad[b] = true;
    }
    let width = cap + 1;
    let mut labels = Vec::with_capacity(n * width);
    let mut succ = Vec::with_capacity(n * width);
    for s in 0..n {
        for c in 0..width {
            labels.push(kripke.label(s));
            succ.push(
                kripke
                    .successors(s)
                    .iter()
                    .map(|&t| {
                        let bump = usize::from(is_bad[t]);
                        t * width + (c + bump).min(cap)
                    })
                    .collect::<Vec<usize>>(),
            );
        }
    }
    let initial_counter = usize::from(is_bad[kripke.initial()]).min(cap);
    let initial = kripke.initial() * width + initial_counter;
    let product = Kripke::new(kripke.alphabet().clone(), labels, succ, initial);
    let saturated = (0..n).map(|s| s * width + cap).collect();
    CounterProduct {
        kripke: product,
        bad: saturated,
        cap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sl_omega::Alphabet;

    /// 0(a) -> 1(b) -> 0; 1 is bad.
    fn two_cycle() -> Kripke {
        let sigma = Alphabet::ab();
        let a = sigma.symbol("a").unwrap();
        let b = sigma.symbol("b").unwrap();
        Kripke::new(sigma, vec![a, b], vec![vec![1], vec![0]], 0)
    }

    #[test]
    fn product_size_is_exactly_predictable() {
        let k = two_cycle();
        let product = counter_product(&k, &[1], 3);
        assert_eq!(product.kripke.len(), 2 * 4);
        let edges: usize = (0..product.kripke.len())
            .map(|s| product.kripke.successors(s).len())
            .sum();
        assert_eq!(edges, 2 * 4);
        assert_eq!(product.bad.len(), 2);
    }

    #[test]
    fn counter_counts_bad_visits() {
        let k = two_cycle();
        let product = counter_product(&k, &[1], 2);
        // 0 with counter 0 is initial (0 is not bad).
        assert_eq!(product.kripke.initial(), product.state_id(0, 0));
        // Stepping 0 -> 1 bumps the counter.
        assert_eq!(
            product.kripke.successors(product.state_id(0, 0)),
            &[product.state_id(1, 1)]
        );
        // Stepping back to 0 keeps it.
        assert_eq!(
            product.kripke.successors(product.state_id(1, 1)),
            &[product.state_id(0, 1)]
        );
        // The counter saturates at the cap.
        assert_eq!(
            product.kripke.successors(product.state_id(0, 2)),
            &[product.state_id(1, 2)]
        );
    }

    #[test]
    fn bad_initial_state_starts_counted() {
        let k = two_cycle().rooted_at(1);
        let product = counter_product(&k, &[1], 2);
        assert_eq!(product.kripke.initial(), product.state_id(1, 1));
    }

    #[test]
    fn round_trip_ids() {
        let k = two_cycle();
        let product = counter_product(&k, &[1], 3);
        for id in 0..product.kripke.len() {
            let (s, c) = product.original(id);
            assert_eq!(product.state_id(s, c), id);
        }
    }
}
