//! Cross-crate integration: the paper's lattice theorems checked
//! exhaustively on the corpus of modular complemented lattices, and the
//! bridge between the abstract lattice layer and the concrete automata
//! instantiation.

use safety_liveness::lattice::{
    all_decompositions, classify, decompose, decompose_pair_checked, enumerate_closures, figure1,
    figure2, generators, lemma4_holds, no_decomposition_exists, theorem5_applies,
    theorem6_strongest_safety, theorem7_weakest_liveness, verify_decomposition, Classification,
    Closure, LatticeError,
};
use sl_conform::{Factor, LatticeCase};
use sl_support::prop::case_rng;

#[test]
fn theorem2_exhaustive_on_corpus() {
    // Every element of every corpus lattice decomposes under every
    // closure.
    for (name, lattice) in generators::modular_complemented_corpus() {
        if lattice.len() > 10 {
            // Closure enumeration is exponential; sample instead.
            for seed in 0..20 {
                let cl = safety_liveness::lattice::random_closure(&lattice, seed);
                for a in 0..lattice.len() {
                    let d = decompose(&lattice, &cl, a)
                        .unwrap_or_else(|e| panic!("{name}, seed {seed}, element {a}: {e}"));
                    assert!(verify_decomposition(&lattice, &cl, &cl, &a, &d));
                }
            }
        } else {
            for cl in enumerate_closures(&lattice) {
                for a in 0..lattice.len() {
                    let d = decompose(&lattice, &cl, a)
                        .unwrap_or_else(|e| panic!("{name}, element {a}: {e}"));
                    assert!(verify_decomposition(&lattice, &cl, &cl, &a, &d));
                }
            }
        }
    }
}

#[test]
fn theorem3_two_closure_variant_on_b3() {
    let lattice = generators::boolean(3);
    let closures = enumerate_closures(&lattice);
    for cl1 in &closures {
        for cl2 in &closures {
            if !cl1.pointwise_leq(&lattice, cl2) {
                continue;
            }
            for a in 0..lattice.len() {
                let d = decompose_pair_checked(&lattice, cl1, cl2, a).unwrap();
                assert!(verify_decomposition(&lattice, cl1, cl2, &a, &d));
            }
        }
    }
}

#[test]
fn lemma4_holds_everywhere_on_corpus() {
    for (name, lattice) in generators::modular_complemented_corpus() {
        if lattice.len() > 10 {
            continue;
        }
        for cl in enumerate_closures(&lattice) {
            for a in 0..lattice.len() {
                assert!(lemma4_holds(&lattice, &cl, a), "{name}, element {a}");
            }
        }
    }
}

#[test]
fn figure1_the_modularity_counterexample() {
    let fig = figure1();
    // The lattice is not modular, and the decomposition genuinely fails
    // for element a — matching Lemma 6.
    assert!(!fig.lattice.is_modular());
    assert!(all_decompositions(&fig.lattice, &fig.closure, &fig.closure, fig.a).is_empty());
    // Every OTHER element still decomposes (the failure is pinpointed).
    for x in 0..fig.lattice.len() {
        if x == fig.a {
            continue;
        }
        assert!(
            !all_decompositions(&fig.lattice, &fig.closure, &fig.closure, x).is_empty(),
            "element {x} should decompose"
        );
    }
}

#[test]
fn figure2_the_distributivity_counterexample() {
    let fig = figure2();
    assert!(fig.lattice.is_modular() && !fig.lattice.is_distributive());
    // Theorem 7's conclusion fails: z is not below a ∨ b.
    let join = fig.lattice.join(fig.a, fig.b);
    assert!(!fig.lattice.leq(fig.z, join));
    // The checker refuses the non-distributive lattice outright.
    assert!(theorem7_weakest_liveness(&fig.lattice, &fig.closure, &fig.closure, fig.a).is_err());
}

#[test]
fn theorem5_impossibility_on_corpus() {
    // For every corpus lattice: whenever cl2.a = 1 and cl1.a < 1, the
    // "fourth combination" (cl2-safety ∧ cl1-liveness) has no
    // decomposition.
    for (name, lattice) in generators::modular_complemented_corpus() {
        if lattice.len() > 8 {
            continue;
        }
        let closures = enumerate_closures(&lattice);
        for cl1 in &closures {
            for cl2 in &closures {
                if !cl1.pointwise_leq(&lattice, cl2) {
                    continue;
                }
                for a in 0..lattice.len() {
                    if theorem5_applies(&lattice, cl1, cl2, a) {
                        assert!(
                            no_decomposition_exists(&lattice, cl2, cl1, a),
                            "{name}: Theorem 5 violated at {a}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn theorem6_and_7_on_distributive_corpus() {
    for (name, lattice) in generators::distributive_corpus() {
        if lattice.len() > 12 || !lattice.is_complemented() {
            continue;
        }
        for cl in enumerate_closures(&lattice) {
            for a in 0..lattice.len() {
                let strongest = theorem6_strongest_safety(&lattice, &cl, &cl, a)
                    .unwrap_or_else(|e| panic!("{name}: {e}"));
                assert_eq!(strongest, cl.apply(a));
                let weakest = theorem7_weakest_liveness(&lattice, &cl, &cl, a)
                    .unwrap_or_else(|e| panic!("{name}: {e}"));
                let d = decompose(&lattice, &cl, a).unwrap();
                assert_eq!(d.safety, strongest);
                assert_eq!(d.liveness, weakest);
            }
        }
    }
}

#[test]
fn classification_matches_automata_classification() {
    // The same trichotomy shows up at both layers: on the finite
    // lattice side with an abstract closure, and on the automata side
    // with the language closure. Sanity-bridge: classify both the
    // elements of a powerset lattice of lasso words (finite universe)
    // and the corresponding Büchi automata... here we check the lattice
    // layer's classification labels are consistent with their
    // definitions.
    let lattice = generators::boolean(3);
    let cl = Closure::from_fixpoints(&lattice, &[0b110, 0b111]).unwrap();
    for a in 0..lattice.len() {
        let c = classify(&lattice, &cl, a);
        match c {
            Classification::Safety => assert!(cl.is_safety(a) && !cl.is_liveness(&lattice, a)),
            Classification::Liveness => assert!(!cl.is_safety(a) && cl.is_liveness(&lattice, a)),
            Classification::Both => assert!(cl.is_safety(a) && cl.is_liveness(&lattice, a)),
            Classification::Neither => {
                assert!(!cl.is_safety(a) && !cl.is_liveness(&lattice, a));
            }
        }
    }
}

#[test]
fn partition_lattice_is_complemented_but_not_modular() {
    // The partition lattice for n >= 4 is complemented but not modular:
    // Theorem 2's constructive decomposition can fail there, which the
    // checked API reports rather than silently mis-decomposing.
    let (lattice, _) = generators::partition_lattice(4);
    assert!(!lattice.is_modular());
    assert!(lattice.is_complemented());
    let mut failures = 0;
    for seed in 0..10 {
        let cl = safety_liveness::lattice::random_closure(&lattice, seed);
        for a in 0..lattice.len() {
            if decompose(&lattice, &cl, a).is_err() {
                failures += 1;
            }
        }
    }
    // Non-modularity must bite at least once across the sweep (the
    // identity closure never fails, so the assertion is meaningful).
    assert!(failures > 0, "expected some decomposition failures");
}

/// Theorems 5, 6, and 7 over randomly generated modular complemented
/// lattices (products of Boolean and M3 factors drawn by the
/// sl-conform recipe generator), with random closure pairs cl1 <= cl2.
/// Complements Theorem 5's exhaustive corpus sweep above with lattices
/// and closures the corpus does not contain.
#[test]
fn theorems_5_6_7_on_random_modular_lattices() {
    let mut saw_nondistributive = 0;
    let mut saw_theorem5 = 0;
    for case in 0..48u32 {
        let mut rng = case_rng(0x5157, "lattice_theorems.random_modular", case);
        let recipe = sl_conform::gen::gen_lattice(&mut rng);
        let (lattice, cl1, cl2) = recipe.build();
        assert!(lattice.is_modular() && lattice.is_complemented());
        assert!(cl1.pointwise_leq(&lattice, &cl2));
        let distributive = lattice.is_distributive();
        if !distributive {
            saw_nondistributive += 1;
        }
        for a in 0..lattice.len() {
            if theorem5_applies(&lattice, &cl1, &cl2, a) {
                saw_theorem5 += 1;
                assert!(
                    no_decomposition_exists(&lattice, &cl2, &cl1, a),
                    "Theorem 5 violated: case {case}, element {a}"
                );
            }
            let strongest = theorem6_strongest_safety(&lattice, &cl1, &cl2, a)
                .unwrap_or_else(|e| panic!("Theorem 6 failed: case {case}, element {a}: {e:?}"));
            assert_eq!(strongest, cl1.apply(a), "case {case}, element {a}");
            match theorem7_weakest_liveness(&lattice, &cl1, &cl2, a) {
                Ok(weakest) => {
                    assert!(distributive, "Theorem 7 accepted M3 factor: case {case}");
                    assert_eq!(
                        lattice.meet(strongest, weakest),
                        a,
                        "Theorem 7 parts do not recompose: case {case}, element {a}"
                    );
                }
                Err(LatticeError::HypothesisViolated("distributivity")) => {
                    assert!(!distributive, "spurious refusal: case {case}, element {a}");
                }
                Err(e) => panic!("Theorem 7 failed: case {case}, element {a}: {e:?}"),
            }
        }
    }
    // The sweep must actually exercise both negative-control branches.
    assert!(saw_nondistributive > 0, "no M3-factor lattice drawn");
    assert!(saw_theorem5 > 0, "Theorem 5 hypotheses never held");
}

/// Negative controls for the randomized sweep: the pentagon N5 (not
/// modular) and the explicit recipe `[M3]` (modular, not distributive)
/// sit exactly on the two hypothesis boundaries, mirroring the paper's
/// Figure 1 and Figure 2 counterexamples.
#[test]
fn n5_and_m3_negative_controls() {
    // N5: complemented but not modular, so it is outside the recipe
    // space, and Theorem 2's construction must fail somewhere.
    let n5 = generators::n5();
    assert!(n5.is_complemented() && !n5.is_modular());
    let mut failures = 0;
    for cl in enumerate_closures(&n5) {
        for a in 0..n5.len() {
            if decompose(&n5, &cl, a).is_err() {
                failures += 1;
            }
        }
    }
    assert!(failures > 0, "N5 should defeat some decomposition");

    // M3 via the recipe: modular and complemented, so Theorems 2/3/5/6
    // all go through, but Theorem 7 issues its typed distributivity
    // refusal for every element.
    let recipe = LatticeCase {
        factors: vec![Factor::M3],
        fix2: vec![4],
        extra1: vec![1],
    };
    let (m3, cl1, cl2) = recipe.build();
    assert!(m3.is_modular() && m3.is_complemented() && !m3.is_distributive());
    for a in 0..m3.len() {
        let d = decompose_pair_checked(&m3, &cl1, &cl2, a).unwrap();
        assert!(verify_decomposition(&m3, &cl1, &cl2, &a, &d));
        assert!(matches!(
            theorem7_weakest_liveness(&m3, &cl1, &cl2, a),
            Err(LatticeError::HypothesisViolated("distributivity"))
        ));
    }
}
