//! Protocol-level tests of the `sl-service` daemon: golden
//! transcripts, malformed/oversized frame rejection, budget and fault
//! degradation, and thread-count determinism.
//!
//! The golden session (`scripts/service_session.jsonl` →
//! `scripts/service_session.golden`) is the same pair of files the
//! verify.sh `service` stage pipes through the `sld` binary; here it
//! runs in-process. Services are constructed with an explicit
//! [`FaultPlan`] so the assertions hold even when the whole test suite
//! runs under the environment fault drill (`SL_FAULT_RATE`), and the
//! golden script deliberately carries no budgets — budgeted engine
//! paths consult the process-wide plan, which this test cannot pin.

use safety_liveness::service::{serve, Json, Service, ServiceConfig, REQUEST_FAULT_SITE};
use sl_support::FaultPlan;
use std::io::Cursor;

const SESSION_SCRIPT: &str = include_str!("../scripts/service_session.jsonl");
const SESSION_GOLDEN: &str = include_str!("../scripts/service_session.golden");
const QUOTIENT_SCRIPT: &str = include_str!("../scripts/quotient_session.jsonl");
const QUOTIENT_GOLDEN: &str = include_str!("../scripts/quotient_session.golden");

fn quiet_service(threads: usize) -> Service {
    Service::new(ServiceConfig {
        fault: FaultPlan::disabled(),
        threads,
        ..ServiceConfig::default()
    })
}

fn run_script(service: &mut Service, script: &str) -> String {
    let mut output = Vec::new();
    serve(service, &mut Cursor::new(script.as_bytes()), &mut output)
        .expect("in-memory serving cannot fail on i/o");
    String::from_utf8(output).expect("responses are utf-8")
}

fn response_lines(text: &str) -> Vec<Json> {
    text.lines()
        .map(|line| safety_liveness::service::json::parse(line).expect("response parses"))
        .collect()
}

fn is_ok(response: &Json) -> bool {
    response.get("ok").and_then(Json::as_bool) == Some(true)
}

fn error_kind(response: &Json) -> Option<&str> {
    response.get("error")?.get("kind")?.as_str()
}

/// A script exercising cache reuse and batch fan-out; used by the
/// determinism and fault-drill tests. Every compute is unbudgeted so
/// the engine paths carry no fault sites of their own.
fn batch_heavy_script() -> String {
    let mut script = String::new();
    script.push_str(
        r#"{"id":"d1","verb":"define","name":"gfa","ltl":"G F a","alphabet":["a","b"]}"#,
    );
    script.push('\n');
    script.push_str(r#"{"id":"d2","verb":"define","name":"ga","ltl":"G a","alphabet":["a","b"]}"#);
    script.push('\n');
    script.push_str(r#"{"id":"d3","verb":"define","name":"fa","ltl":"F a","alphabet":["a","b"]}"#);
    script.push('\n');
    for round in 0..3 {
        script.push_str(&format!(
            concat!(
                r#"{{"id":"b{round}","verb":"batch","requests":["#,
                r#"{{"verb":"include","left":"ga","right":"gfa"}},"#,
                r#"{{"verb":"include","left":"gfa","right":"ga"}},"#,
                r#"{{"verb":"classify","target":"fa"}},"#,
                r#"{{"verb":"classify","target":"ga"}},"#,
                r#"{{"verb":"universal","target":"gfa"}},"#,
                r#"{{"verb":"equivalent","left":"fa","right":"gfa"}},"#,
                r#"{{"verb":"include","left":"fa","right":"ga"}},"#,
                r#"{{"verb":"equivalent","left":"ga","right":"ga"}}"#,
                r#"]}}"#,
            ),
            round = round
        ));
        script.push('\n');
    }
    script.push_str(r#"{"id":"s","verb":"stats"}"#);
    script.push('\n');
    script
}

#[test]
fn golden_transcript_reproduces_byte_for_byte() {
    let out = run_script(&mut quiet_service(1), SESSION_SCRIPT);
    assert_eq!(out, SESSION_GOLDEN, "golden transcript drifted");
}

/// The redefine-heavy golden session pins the interned quotient
/// cache's wire-visible behavior: repeated queries over the same
/// bindings hit interned quotients instead of recomputing the
/// simulation per query, and each `define` over an existing name
/// advances the interned node (re-deriving only dirty SCCs). The
/// stats counters are part of the byte-pinned transcript, and the
/// structural assertions below keep the pin honest if the golden is
/// ever regenerated.
#[test]
fn quotient_cache_golden_session_pins_reuse_and_advance_counters() {
    for threads in [1, 8] {
        let out = run_script(&mut quiet_service(threads), QUOTIENT_SCRIPT);
        assert_eq!(out, QUOTIENT_GOLDEN, "quotient golden drifted at threads={threads}");
    }
    let responses = response_lines(QUOTIENT_GOLDEN);
    let stats = &responses[responses.len() - 2];
    let quotient = stats
        .get("result")
        .and_then(|r| r.get("engine"))
        .and_then(|e| e.get("quotient_cache"))
        .expect("stats carries engine.quotient_cache");
    let field = |name: &str| quotient.get(name).and_then(Json::as_u64).expect(name);
    // Four distinct automata reach the cache: G F a, G a, the
    // universality reference, and the G F b redefine.
    assert_eq!(field("misses"), 4);
    assert_eq!(field("entries"), 4);
    // Every query after the warming defines reuses an interned
    // quotient — the whole point of the cache.
    assert!(field("hits") >= 10, "hits {}", field("hits"));
    // Both redefines of `x` advanced the interned node; only the
    // G F a -> G F b flip actually re-derived an SCC (the redefine
    // back to G F a lands on the still-interned original).
    assert_eq!(field("advances"), 2);
    assert!(field("dirty_sccs") >= 1, "dirty_sccs {}", field("dirty_sccs"));
    assert_eq!(field("invalidations"), 0);
    assert_eq!(field("collisions"), 0);
    // And the on-the-fly engine's gauges are live in the same stats.
    let antichain = stats
        .get("result")
        .and_then(|r| r.get("engine"))
        .and_then(|e| e.get("antichain"))
        .expect("stats carries engine.antichain");
    let peak = antichain
        .get("peak_macro_states")
        .and_then(Json::as_u64)
        .expect("peak_macro_states");
    let fin = antichain
        .get("final_antichain")
        .and_then(Json::as_u64)
        .expect("final_antichain");
    assert!(peak > 0 && fin > 0 && fin <= peak, "peak {peak} final {fin}");
}

#[test]
fn golden_transcript_is_thread_count_invariant() {
    let base = run_script(&mut quiet_service(1), SESSION_SCRIPT);
    for threads in [2, 8] {
        let out = run_script(&mut quiet_service(threads), SESSION_SCRIPT);
        assert_eq!(out, base, "responses differ at threads={threads}");
    }
}

#[test]
fn batch_fanout_is_byte_identical_across_thread_counts() {
    let script = batch_heavy_script();
    let base = run_script(&mut quiet_service(1), &script);
    for threads in [2, 8] {
        let out = run_script(&mut quiet_service(threads), &script);
        assert_eq!(out, base, "batch responses differ at threads={threads}");
    }
    // The final stats line proves the cache was exercised identically:
    // rounds 2 and 3 re-ask round 1's eight queries.
    let stats = response_lines(&base).pop().expect("stats response");
    let cache = stats
        .get("result")
        .and_then(|r| r.get("cache"))
        .expect("cache stats");
    assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(16));
    assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(8));
}

#[test]
fn malformed_frames_get_typed_rejections_and_the_daemon_survives() {
    let script = concat!(
        "this is not json\n",
        "[1,2,3]\n",
        "{\"verb\":42}\n",
        "{\"id\":1,\"verb\":\"frobnicate\"}\n",
        "{\"id\":2,\"verb\":\"include\",\"left\":\"nope\",\"right\":\"nope\"}\n",
        "{\"id\":3,\"verb\":\"define\",\"name\":\"x\"}\n",
        "{\"id\":4,\"verb\":\"define\",\"name\":\"bad\",\"hoa\":\"HOA: v2\\n--BODY--\\n--END--\"}\n",
        "{\"id\":5,\"verb\":\"define\",\"name\":\"bad\",\"ltl\":\"G (\",\"alphabet\":[\"a\"]}\n",
        "{\"id\":6,\"verb\":\"stats\"}\n",
    );
    let out = run_script(&mut quiet_service(1), script);
    let responses = response_lines(&out);
    assert_eq!(responses.len(), 9);
    let expected_kinds = [
        "parse",
        "parse",
        "parse",
        "unknown_verb",
        "unknown_object",
        "invalid_input",
        "invalid_input",
        "invalid_input",
    ];
    for (response, expected) in responses.iter().zip(expected_kinds) {
        assert!(!is_ok(response), "{}", response.render());
        assert_eq!(error_kind(response), Some(expected), "{}", response.render());
    }
    // The daemon kept serving: the final stats succeeds and counted
    // every error.
    let stats = &responses[8];
    assert!(is_ok(stats), "{}", stats.render());
    let errors = stats
        .get("result")
        .and_then(|r| r.get("errors"))
        .and_then(Json::as_u64);
    assert_eq!(errors, Some(8));
}

#[test]
fn oversized_lines_are_rejected_and_framing_resynchronizes() {
    let mut service = Service::new(ServiceConfig {
        fault: FaultPlan::disabled(),
        threads: 1,
        max_line: 128,
        ..ServiceConfig::default()
    });
    let script = format!(
        "{{\"id\":1,\"verb\":\"stats\",\"pad\":\"{}\"}}\n{{\"id\":2,\"verb\":\"stats\"}}\n",
        "y".repeat(500)
    );
    let out = run_script(&mut service, &script);
    let responses = response_lines(&out);
    assert_eq!(responses.len(), 2);
    assert_eq!(error_kind(&responses[0]), Some("oversized_frame"));
    assert!(is_ok(&responses[1]), "{}", responses[1].render());
}

#[test]
fn exhausted_budgets_degrade_to_typed_errors_not_dead_daemons() {
    let mut service = quiet_service(1);
    let script = concat!(
        "{\"id\":1,\"verb\":\"define\",\"name\":\"gfa\",\"ltl\":\"G F a\",\"alphabet\":[\"a\",\"b\"]}\n",
        "{\"id\":2,\"verb\":\"define\",\"name\":\"ga\",\"ltl\":\"G a\",\"alphabet\":[\"a\",\"b\"]}\n",
        "{\"id\":3,\"verb\":\"include\",\"left\":\"gfa\",\"right\":\"ga\",\"budget\":{\"steps\":1}}\n",
        "{\"id\":4,\"verb\":\"include\",\"left\":\"gfa\",\"right\":\"ga\"}\n",
        "{\"id\":5,\"verb\":\"monitor-step\",\"monitor\":\"m\",\"target\":\"ga\",\"symbols\":[\"a\",\"a\",\"a\"],\"budget\":{\"steps\":2}}\n",
    );
    let out = run_script(&mut service, script);
    let responses = response_lines(&out);
    assert_eq!(responses.len(), 5);
    assert!(is_ok(&responses[0]) && is_ok(&responses[1]));
    // One antichain insertion attempt cannot decide GFa ⊄ Ga. Under
    // the environment fault drill the budgeted path may report the
    // injected fault instead; both are graceful typed degradations.
    let kind = error_kind(&responses[2]).expect("budgeted query fails");
    assert!(
        kind == "budget_exceeded" || kind == "fault_injected",
        "unexpected kind {kind}"
    );
    // The same query unbudgeted still works — failures are not cached.
    assert!(is_ok(&responses[3]), "{}", responses[3].render());
    // Three monitor steps against a two-step budget.
    let kind = error_kind(&responses[4]).expect("budgeted monitor fails");
    assert_eq!(kind, "budget_exceeded");
}

/// Payloads engineered to trip the engine's internal assertions — a
/// duplicate LTL alphabet, a header-declared state count near
/// `usize::MAX`, duplicate HOA propositions — must come back as typed
/// `invalid_input` rejections with the daemon still serving, not as
/// panics or allocation aborts.
#[test]
fn hostile_define_payloads_get_typed_rejections_not_panics() {
    let mut service = quiet_service(1);
    let script = concat!(
        "{\"id\":1,\"verb\":\"define\",\"name\":\"dup\",\"ltl\":\"a\",\"alphabet\":[\"a\",\"a\"]}\n",
        "{\"id\":2,\"verb\":\"define\",\"name\":\"huge\",\"hoa\":\"HOA: v1\\nStates: 18446744073709551615\\nStart: 0\\nAP: 1 \\\"a\\\"\\nAcceptance: 1 Inf(0)\\n--BODY--\\n--END--\\n\"}\n",
        "{\"id\":3,\"verb\":\"define\",\"name\":\"dupap\",\"hoa\":\"HOA: v1\\nStates: 1\\nStart: 0\\nAP: 2 \\\"a\\\" \\\"a\\\"\\nAcceptance: 1 Inf(0)\\n--BODY--\\nState: 0\\n--END--\\n\"}\n",
        "{\"id\":4,\"verb\":\"stats\"}\n",
    );
    let out = run_script(&mut service, script);
    let responses = response_lines(&out);
    assert_eq!(responses.len(), 4);
    for response in &responses[..3] {
        assert_eq!(
            error_kind(response),
            Some("invalid_input"),
            "{}",
            response.render()
        );
    }
    assert!(is_ok(&responses[3]), "{}", responses[3].render());
}

/// A rejected `monitor-step` — exhausted budget or malformed symbol
/// list — must leave the session exactly where it was: the whole batch
/// is validated and charged before the first step, so a client retry
/// can never double-step a silently consumed prefix.
#[test]
fn failed_monitor_steps_consume_no_prefix() {
    let mut service = quiet_service(1);
    let script = concat!(
        "{\"id\":1,\"verb\":\"define\",\"name\":\"ga\",\"ltl\":\"G a\",\"alphabet\":[\"a\",\"b\"]}\n",
        "{\"id\":2,\"verb\":\"monitor-step\",\"monitor\":\"m\",\"target\":\"ga\",\"symbols\":[\"b\",\"b\",\"b\"],\"budget\":{\"steps\":2}}\n",
        "{\"id\":3,\"verb\":\"monitor-step\",\"monitor\":\"m\",\"symbols\":[\"b\",42]}\n",
        "{\"id\":4,\"verb\":\"monitor-step\",\"monitor\":\"m\",\"symbols\":[\"a\"]}\n",
    );
    let out = run_script(&mut service, script);
    let responses = response_lines(&out);
    assert_eq!(responses.len(), 4);
    assert_eq!(error_kind(&responses[1]), Some("budget_exceeded"));
    assert_eq!(error_kind(&responses[2]), Some("parse"));
    // Had either failed request stepped its prefix, the `b`s would have
    // parked the G a monitor in sticky `violation`; an untouched
    // session still answers `ok` on `a`.
    let verdict = responses[3]
        .get("result")
        .and_then(|r| r.get("verdict"))
        .and_then(Json::as_str);
    assert_eq!(verdict, Some("ok"), "{}", responses[3].render());
}

#[test]
fn seeded_fault_drill_degrades_exactly_the_predicted_requests() {
    let plan = FaultPlan::new(2003, 0.5);
    let mut drilled = Service::new(ServiceConfig {
        fault: plan,
        threads: 1,
        ..ServiceConfig::default()
    });
    let script: String = (0..40)
        .map(|i| format!("{{\"id\":{i},\"verb\":\"stats\"}}\n"))
        .collect();
    let out = run_script(&mut drilled, &script);
    let responses = response_lines(&out);
    assert_eq!(responses.len(), 40);
    let mut faulted = 0;
    for (index, response) in responses.iter().enumerate() {
        if plan.should_fault(REQUEST_FAULT_SITE, index as u64) {
            assert_eq!(error_kind(response), Some("fault_injected"), "request {index}");
            faulted += 1;
        } else {
            assert!(is_ok(response), "request {index}: {}", response.render());
        }
    }
    assert!(faulted > 0, "a 50% drill over 40 requests must fire");

    // And at the acceptance drill rate: every request still gets a
    // typed response, the drilled session is itself deterministic (so
    // it is reproducible for debugging), and responses only diverge
    // from the clean run once a fault has fired (a faulted `define`
    // legitimately cascades into `unknown_object` errors downstream).
    let drill = FaultPlan::new(2003, 0.05);
    let script = batch_heavy_script();
    let clean = run_script(&mut quiet_service(1), &script);
    let drilled_service = || {
        Service::new(ServiceConfig {
            fault: drill,
            threads: 1,
            ..ServiceConfig::default()
        })
    };
    let out = run_script(&mut drilled_service(), &script);
    assert_eq!(out, run_script(&mut drilled_service(), &script));
    assert_eq!(out.lines().count(), clean.lines().count());
    let mut fault_seen = false;
    for (clean_line, drilled_line) in clean.lines().zip(out.lines()) {
        let response = safety_liveness::service::json::parse(drilled_line).expect("parses");
        fault_seen |= drilled_line.contains("fault_injected");
        if !fault_seen {
            assert_eq!(drilled_line, clean_line);
        } else {
            // Post-fault responses stay typed: ok, or an error with a
            // structured kind.
            assert!(is_ok(&response) || error_kind(&response).is_some());
        }
    }
}

#[test]
fn monitor_sessions_are_incremental_with_sticky_verdicts() {
    let mut service = quiet_service(1);
    let script = concat!(
        "{\"id\":1,\"verb\":\"define\",\"name\":\"ga\",\"ltl\":\"G a\",\"alphabet\":[\"a\",\"b\"]}\n",
        "{\"id\":2,\"verb\":\"monitor-step\",\"monitor\":\"m\",\"target\":\"ga\",\"symbols\":[\"a\",\"a\"]}\n",
        "{\"id\":3,\"verb\":\"monitor-step\",\"monitor\":\"m\",\"symbols\":[\"zz\"]}\n",
        "{\"id\":4,\"verb\":\"monitor-step\",\"monitor\":\"m\",\"symbols\":[\"a\"]}\n",
        "{\"id\":5,\"verb\":\"monitor-step\",\"monitor\":\"m\",\"symbols\":[\"a\"],\"reset\":true}\n",
        "{\"id\":6,\"verb\":\"monitor-step\",\"monitor\":\"other\",\"symbols\":[\"a\"]}\n",
    );
    let out = run_script(&mut service, script);
    let responses = response_lines(&out);
    let verdict = |i: usize| {
        responses[i]
            .get("result")
            .and_then(|r| r.get("verdict"))
            .and_then(Json::as_str)
            .map(str::to_string)
    };
    // Steps accumulate across requests; an out-of-alphabet symbol
    // parks the session in sticky Unknown until an explicit reset.
    assert_eq!(verdict(1).as_deref(), Some("ok"));
    assert_eq!(verdict(2).as_deref(), Some("unknown"));
    assert_eq!(verdict(3).as_deref(), Some("unknown"));
    assert_eq!(verdict(4).as_deref(), Some("ok"));
    // A session must be created with a target before stepping.
    assert_eq!(error_kind(&responses[5]), Some("invalid_input"));
}

#[test]
fn redefinition_cannot_serve_stale_cache_entries() {
    let mut service = quiet_service(1);
    let script = concat!(
        "{\"id\":1,\"verb\":\"define\",\"name\":\"x\",\"ltl\":\"G a\",\"alphabet\":[\"a\",\"b\"]}\n",
        "{\"id\":2,\"verb\":\"universal\",\"target\":\"x\"}\n",
        "{\"id\":3,\"verb\":\"define\",\"name\":\"x\",\"ltl\":\"a | !a\",\"alphabet\":[\"a\",\"b\"]}\n",
        "{\"id\":4,\"verb\":\"universal\",\"target\":\"x\"}\n",
    );
    let out = run_script(&mut service, script);
    let responses = response_lines(&out);
    let universal = |i: usize| {
        responses[i]
            .get("result")
            .and_then(|r| r.get("universal"))
            .and_then(Json::as_bool)
    };
    // The cache keys by structural hash of the operand, not by name:
    // redefining `x` routes the query to the new automaton.
    assert_eq!(universal(1), Some(false));
    assert_eq!(universal(3), Some(true));
}
