//! Guard test: the workspace must build offline, forever.
//!
//! The original tier-1 failure mode was a registry resolution abort
//! (`rand`, `proptest`, `criterion` could not be fetched in a
//! network-isolated container). Every external dependency has since
//! been replaced by the in-tree `sl-support` crate; this test parses
//! every workspace manifest and fails if a registry dependency ever
//! sneaks back in.

use std::fs;
use std::path::{Path, PathBuf};

/// All dependency-section entries of a manifest, as `(section, key, value)`.
fn dependency_entries(manifest: &str) -> Vec<(String, String, String)> {
    let mut entries = Vec::new();
    let mut section = String::new();
    for raw in manifest.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') && line.ends_with(']') {
            section = line[1..line.len() - 1].trim().to_string();
            continue;
        }
        let is_dep_section = section == "dependencies"
            || section == "dev-dependencies"
            || section == "build-dependencies"
            || section == "workspace.dependencies"
            || section.starts_with("target.") && section.ends_with("dependencies");
        if !is_dep_section {
            continue;
        }
        if let Some((key, value)) = line.split_once('=') {
            entries.push((
                section.clone(),
                key.trim().to_string(),
                value.trim().to_string(),
            ));
        }
    }
    entries
}

fn workspace_manifests() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut manifests = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    for entry in fs::read_dir(&crates).expect("crates/ directory") {
        let manifest = entry.expect("dir entry").path().join("Cargo.toml");
        if manifest.is_file() {
            manifests.push(manifest);
        }
    }
    manifests.sort();
    manifests
}

#[test]
fn every_workspace_dependency_is_a_path_dependency() {
    let manifests = workspace_manifests();
    // Root manifest + the nine member crates.
    assert!(
        manifests.len() >= 10,
        "expected at least 10 manifests, found {}: {manifests:?}",
        manifests.len()
    );
    for manifest_path in &manifests {
        let manifest = fs::read_to_string(manifest_path).expect("readable manifest");
        for (section, key, value) in dependency_entries(&manifest) {
            // Accept `dep = { path = ... }`, `dep = { workspace = true }`,
            // and the dotted form `dep.workspace = true` / `dep.path = ...`.
            let ok = value.contains("path")
                || value.contains("workspace")
                || key.ends_with(".path")
                || key.ends_with(".workspace");
            assert!(
                ok,
                "{}: [{section}] dependency `{key} = {value}` is not a \
                 path/workspace dependency — the workspace must build offline",
                manifest_path.display()
            );
        }
    }
}

#[test]
fn known_registry_crates_do_not_reappear() {
    for manifest_path in workspace_manifests() {
        let manifest = fs::read_to_string(&manifest_path).expect("readable manifest");
        for (section, key, _) in dependency_entries(&manifest) {
            let base = key.split('.').next().unwrap_or(&key);
            assert!(
                !matches!(base, "rand" | "proptest" | "criterion"),
                "{}: [{section}] declares registry crate `{key}`; use \
                 sl-support (rng/prop/bench) instead",
                manifest_path.display()
            );
        }
    }
}
