//! Differential verification of the three inclusion engines: the
//! on-the-fly antichain search (quotient-cached, lazily expanded), the
//! eager antichain search, and the rank-based oracle.
//!
//! All three engines are exact, so on every query they must return the
//! same verdict, and every counterexample any of them produces must be
//! *genuine* (accepted by the left operand, rejected by the right —
//! checked on the *raw* operands, so the on-the-fly engine's internal
//! quotienting cannot mask a bad witness). The sweep compares the
//! engines over 500+ random automaton pairs drawn from a pool of 120
//! distinct machines; rank-side complement-budget blowups are skipped
//! (and bounded), never treated as disagreements.
//!
//! The tests stay green under an environment fault drill
//! (`SL_FAULT_RATE` > 0): the unbudgeted entry points consult no
//! error-injection site, and the rank engine's complement-cache site
//! (`"buchi.complement_cache"`) only forces behavior-preserving
//! recomputations.

use safety_liveness::buchi::{
    equivalent_antichain, equivalent_onthefly, equivalent_rank, included_antichain,
    included_onthefly, included_rank, random_buchi, universal_antichain, universal_onthefly,
    universal_rank, Buchi, Inclusion, RandomConfig,
};
use safety_liveness::omega::Alphabet;
use sl_support::prop;
use sl_support::prop_assert_eq;

/// A pool of 120 structurally diverse automata: three shape classes
/// (sparse 3-state, mid-density 4-state, dense 5-state) with 40
/// deterministic seeds each. Small enough that the rank oracle's
/// complement stays feasible in debug builds, large enough that pairs
/// exercise inclusion, non-inclusion, emptiness, and universality.
fn pool() -> Vec<Buchi> {
    let sigma = Alphabet::ab();
    let configs = [
        RandomConfig {
            states: 3,
            density_percent: 50,
            accepting_percent: 40,
        },
        RandomConfig {
            states: 4,
            density_percent: 60,
            accepting_percent: 30,
        },
        RandomConfig {
            states: 5,
            density_percent: 45,
            accepting_percent: 50,
        },
    ];
    let mut machines = Vec::with_capacity(120);
    for (class, cfg) in configs.iter().enumerate() {
        for seed in 0..40u64 {
            machines.push(random_buchi(&sigma, class as u64 * 1009 + seed, *cfg));
        }
    }
    machines
}

/// A counterexample to `L(a) ⊆ L(b)` must lie in `L(a) \ L(b)`.
fn assert_genuine(engine: &str, verdict: &Inclusion, a: &Buchi, b: &Buchi, pair: (usize, usize)) {
    if let Inclusion::CounterExample(w) = verdict {
        assert!(
            a.accepts(w),
            "{engine} counterexample {w} for pair {pair:?} not accepted by the left operand"
        );
        assert!(
            !b.accepts(w),
            "{engine} counterexample {w} for pair {pair:?} accepted by the right operand"
        );
    }
}

#[test]
fn engines_agree_on_inclusion_over_500_pairs() {
    let machines = pool();
    let n = machines.len() as u64;
    let mut compared = 0usize;
    let mut rank_skips = 0usize;
    for k in 0..520u64 {
        // Deterministic quasi-random pair selection (covers i == j too).
        let i = (k.wrapping_mul(7919).wrapping_add(3) % n) as usize;
        let j = (k.wrapping_mul(104_729).wrapping_add(11) % n) as usize;
        let (a, b) = (&machines[i], &machines[j]);
        let ac = included_antichain(a, b)
            .expect("antichain budget must not blow on a ≤5-state pair");
        let of = included_onthefly(a, b)
            .expect("on-the-fly budget must not blow on a ≤5-state pair");
        assert_eq!(
            ac.holds(),
            of.holds(),
            "engines disagree on pair ({i}, {j}): antichain {ac:?} vs onthefly {of:?}"
        );
        assert_genuine("onthefly", &of, a, b, (i, j));
        let Ok(rk) = included_rank(a, b) else {
            rank_skips += 1;
            continue;
        };
        assert_eq!(
            ac.holds(),
            rk.holds(),
            "engines disagree on pair ({i}, {j}): antichain {ac:?} vs rank {rk:?}"
        );
        assert_genuine("antichain", &ac, a, b, (i, j));
        assert_genuine("rank", &rk, a, b, (i, j));
        compared += 1;
    }
    assert!(
        compared >= 500,
        "only {compared} pairs compared ({rank_skips} rank-side budget skips)"
    );
}

#[test]
fn engines_agree_on_universality() {
    let machines = pool();
    let mut rank_skips = 0usize;
    for (i, b) in machines.iter().enumerate() {
        let ac = universal_antichain(b).expect("antichain universality budget");
        let of = universal_onthefly(b).expect("on-the-fly universality budget");
        assert_eq!(
            ac.is_ok(),
            of.is_ok(),
            "universality verdicts disagree on pool[{i}]: antichain vs onthefly"
        );
        if let Err(w) = &of {
            assert!(!b.accepts(w), "onthefly non-universality witness {w} accepted");
        }
        let Ok(rk) = universal_rank(b) else {
            rank_skips += 1;
            continue;
        };
        assert_eq!(
            ac.is_ok(),
            rk.is_ok(),
            "universality verdicts disagree on pool[{i}]"
        );
        if let Err(w) = &ac {
            assert!(!b.accepts(w), "antichain non-universality witness {w} accepted");
        }
        if let Err(w) = &rk {
            assert!(!b.accepts(w), "rank non-universality witness {w} accepted");
        }
    }
    assert!(rank_skips <= 5, "{rank_skips} rank-side universality skips");
}

#[test]
fn engines_agree_on_equivalence() {
    let machines = pool();
    let n = machines.len();
    for k in 0..60usize {
        let i = (k * 13 + 1) % n;
        let j = (k * 29 + 7) % n;
        let (a, b) = (&machines[i], &machines[j]);
        let ac = equivalent_antichain(a, b).expect("antichain equivalence budget");
        let of = equivalent_onthefly(a, b).expect("on-the-fly equivalence budget");
        assert_eq!(
            ac.is_ok(),
            of.is_ok(),
            "equivalence verdicts disagree on pair ({i}, {j}): antichain vs onthefly"
        );
        if let Err(w) = &of {
            assert_ne!(a.accepts(w), b.accepts(w), "onthefly separator {w} separates nothing");
        }
        let Ok(rk) = equivalent_rank(a, b) else {
            continue;
        };
        assert_eq!(
            ac.is_ok(),
            rk.is_ok(),
            "equivalence verdicts disagree on pair ({i}, {j})"
        );
        // A separating word must lie in the symmetric difference.
        if let Err(w) = &ac {
            assert_ne!(a.accepts(w), b.accepts(w), "antichain separator {w} separates nothing");
        }
        if let Err(w) = &rk {
            assert_ne!(a.accepts(w), b.accepts(w), "rank separator {w} separates nothing");
        }
    }
}

#[test]
fn prop_engines_agree_on_random_pairs() {
    prop::check(
        "prop_engines_agree_on_random_pairs",
        &(0u64..500, 0u64..500),
        |&(seed1, seed2)| {
            let sigma = Alphabet::ab();
            let cfg = RandomConfig {
                states: 4,
                density_percent: 55,
                accepting_percent: 40,
            };
            let a = random_buchi(&sigma, seed1, cfg);
            let b = random_buchi(&sigma, seed2, cfg);
            let ac = included_antichain(&a, &b)
                .map_err(|e| format!("antichain budget: {e}"))?;
            let of = included_onthefly(&a, &b)
                .map_err(|e| format!("onthefly budget: {e}"))?;
            prop_assert_eq!(ac.holds(), of.holds());
            if let Inclusion::CounterExample(w) = &of {
                prop_assert_eq!(a.accepts(w), true);
                prop_assert_eq!(b.accepts(w), false);
            }
            if let Ok(rk) = included_rank(&a, &b) {
                prop_assert_eq!(ac.holds(), rk.holds());
                if let Inclusion::CounterExample(w) = &ac {
                    prop_assert_eq!(a.accepts(w), true);
                    prop_assert_eq!(b.accepts(w), false);
                }
            }
            Ok(())
        },
    );
}
