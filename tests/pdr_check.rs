//! End-to-end tests of the `check` verb and the k-liveness reduction:
//!
//! * the golden check session (`scripts/check_session.jsonl` →
//!   `scripts/check_session.golden`) replayed in-process must be
//!   byte-identical at 1 and 8 worker threads;
//! * [`counter_product`] must have exactly the predicted size —
//!   `n * (cap + 1)` states and `E * (cap + 1)` transitions — on
//!   random structures;
//! * the k-liveness sweep must agree with an independent direct lasso
//!   search on every small random structure, including the negative
//!   control of a reachable bad cycle;
//! * concurrent `check` clients over one shared service must see
//!   transcripts byte-identical to solo runs, and the daemon's
//!   `check` counters must equal the exact sum of the per-request
//!   engine contributions.

use safety_liveness::service::{serve, Json, Service, ServiceConfig};
use sl_omega::{Alphabet, Symbol};
use sl_pdr::{bmc_lasso, check_liveness, check_safety, validate_lasso, LivenessVerdict};
use sl_support::{Budget, FaultPlan, SplitMix};
use sl_trees::{counter_product, Kripke};
use std::io::Cursor;

const SESSION_SCRIPT: &str = include_str!("../scripts/check_session.jsonl");
const SESSION_GOLDEN: &str = include_str!("../scripts/check_session.golden");

fn quiet_service(threads: usize) -> Service {
    Service::new(ServiceConfig {
        fault: FaultPlan::disabled(),
        threads,
        ..ServiceConfig::default()
    })
}

fn run_script(service: &Service, script: &str) -> String {
    let mut output = Vec::new();
    serve(service, &mut Cursor::new(script.as_bytes()), &mut output)
        .expect("in-memory serving cannot fail on i/o");
    String::from_utf8(output).expect("responses are utf-8")
}

/// Builds a Kripke structure labelled the way the `check` verb does:
/// `b` on bad states, `a` elsewhere.
fn build(succ: Vec<Vec<usize>>, initial: usize, bad: &[usize]) -> Kripke {
    let sigma = Alphabet::ab();
    let a = sigma.symbol("a").unwrap();
    let b = sigma.symbol("b").unwrap();
    let labels: Vec<Symbol> = (0..succ.len())
        .map(|s| if bad.contains(&s) { b } else { a })
        .collect();
    Kripke::new(sigma, labels, succ, initial)
}

/// A random total successor table over `n` states, 1–3 edges each.
fn random_structure(rng: &mut SplitMix, n: usize) -> (Vec<Vec<usize>>, Vec<usize>) {
    let succ: Vec<Vec<usize>> = (0..n)
        .map(|_| (0..1 + rng.below(3)).map(|_| rng.below(n)).collect())
        .collect();
    let bad: Vec<usize> = (0..n).filter(|_| rng.percent() < 25).collect();
    (succ, bad)
}

#[test]
fn check_session_golden_is_byte_identical_at_1_and_8_threads() {
    for threads in [1, 8] {
        let service = quiet_service(threads);
        let transcript = run_script(&service, SESSION_SCRIPT);
        assert_eq!(
            transcript, SESSION_GOLDEN,
            "check session transcript diverged from the golden at {threads} threads"
        );
    }
}

#[test]
fn counter_product_has_exactly_the_predicted_size() {
    let mut rng = SplitMix::new(0x9e15);
    for _ in 0..60 {
        let n = 1 + rng.below(12);
        let (succ, bad) = random_structure(&mut rng, n);
        let edges: usize = succ.iter().map(Vec::len).sum();
        let kripke = build(succ, rng.below(n), &bad);
        for cap in 1..=3 {
            let product = counter_product(&kripke, &bad, cap);
            assert_eq!(
                product.kripke.len(),
                n * (cap + 1),
                "product must have n * (cap + 1) states"
            );
            let product_edges: usize = (0..product.kripke.len())
                .map(|s| product.kripke.successors(s).len())
                .sum();
            assert_eq!(
                product_edges,
                edges * (cap + 1),
                "product must have E * (cap + 1) transitions"
            );
            // The saturated (bad) layer is one counter value per state.
            assert_eq!(product.bad.len(), n);
            // Projection round-trips through the product indexing.
            for s in 0..n {
                for c in 0..=cap {
                    assert_eq!(product.original(product.state_id(s, c)), (s, c));
                }
            }
        }
    }
}

#[test]
fn k_liveness_agrees_with_direct_lasso_search_on_small_structures() {
    let mut rng = SplitMix::new(0xf91);
    let (mut live, mut lassos) = (0, 0);
    for _ in 0..200 {
        let n = 1 + rng.below(10);
        let (succ, bad) = random_structure(&mut rng, n);
        let kripke = build(succ, rng.below(n), &bad);
        let run = check_liveness(&kripke, &bad, &Budget::unlimited()).expect("unbudgeted");
        match run.verdict {
            LivenessVerdict::Live { k, .. } => {
                live += 1;
                assert!(
                    bmc_lasso(&kripke, &bad).is_none(),
                    "PDR says Live at k = {k} but a direct search finds a bad lasso"
                );
                assert!(k <= bad.len(), "the pigeonhole bound |bad| caps k");
            }
            LivenessVerdict::Lasso { stem, looping } => {
                lassos += 1;
                assert!(
                    bmc_lasso(&kripke, &bad).is_some(),
                    "PDR reports a lasso but a direct search finds none"
                );
                validate_lasso(&kripke, &bad, &stem, &looping)
                    .expect("the reported lasso must replay against the structure");
            }
        }
    }
    // The 25% bad rate makes both verdicts common; a one-sided sample
    // would mean the generator (not the checker) regressed.
    assert!(live > 20 && lassos > 20, "one-sided sample: {live} live, {lassos} lassos");
}

#[test]
fn reachable_bad_cycle_is_reported_as_a_lasso() {
    // Negative control: 0 -> 1 -> 2 -> 1 with 1 bad — the bad state
    // sits on the only cycle, so `FG !bad` must fail.
    let kripke = build(vec![vec![1], vec![2], vec![1]], 0, &[1]);
    let run = check_liveness(&kripke, &[1], &Budget::unlimited()).expect("unbudgeted");
    match run.verdict {
        LivenessVerdict::Lasso { stem, looping } => {
            validate_lasso(&kripke, &[1], &stem, &looping).expect("lasso replays");
            assert!(
                stem.first() == Some(&0) && looping.iter().any(|&s| s == 1),
                "the lasso must start at the initial state and loop through bad"
            );
        }
        LivenessVerdict::Live { k, .. } => {
            panic!("a reachable bad cycle cannot be Live (claimed k = {k})")
        }
    }
}

/// Client `j`'s check-only session: a fenced safety query, a
/// transient-bad liveness query, and a repeat of the first (a cache
/// hit). Models are sized by `j`, so concurrent clients never share a
/// cache key.
fn check_script(j: usize) -> String {
    let (safety, bad_s) = safety_model(j);
    let (liveness, bad_l) = liveness_model(j);
    let succ_json = |succ: &[Vec<usize>]| {
        let rows: Vec<String> = succ
            .iter()
            .map(|row| {
                let cells: Vec<String> = row.iter().map(usize::to_string).collect();
                format!("[{}]", cells.join(","))
            })
            .collect();
        format!("[{}]", rows.join(","))
    };
    let safety_line = format!(
        "{{\"id\":1,\"verb\":\"check\",\"mode\":\"safety\",\"model\":{{\"succ\":{},\"initial\":0}},\"bad\":[{bad_s}]}}",
        succ_json(&safety)
    );
    let liveness_line = format!(
        "{{\"id\":2,\"verb\":\"check\",\"mode\":\"liveness\",\"model\":{{\"succ\":{},\"initial\":0}},\"bad\":[{bad_l}]}}",
        succ_json(&liveness)
    );
    let repeat = safety_line.replace("\"id\":1", "\"id\":3");
    format!("{safety_line}\n{liveness_line}\n{repeat}\n")
}

/// Client `j`'s safe model: a `j + 2`-cycle plus a fenced bad
/// self-loop state nobody reaches.
fn safety_model(j: usize) -> (Vec<Vec<usize>>, usize) {
    let m = j + 2;
    let mut succ: Vec<Vec<usize>> = (0..m).map(|i| vec![(i + 1) % m]).collect();
    succ.push(vec![m]);
    (succ, m)
}

/// Client `j`'s live model: a bad initial state every path leaves
/// forever (the `j + 2`-cycle over `1..` never returns to 0).
fn liveness_model(j: usize) -> (Vec<Vec<usize>>, usize) {
    let m = j + 3;
    let mut succ: Vec<Vec<usize>> = vec![vec![1]];
    for i in 1..m {
        succ.push(vec![if i + 1 < m { i + 1 } else { 1 }]);
    }
    (succ, 0)
}

#[test]
fn check_counters_sum_exactly_across_concurrent_clients() {
    const N: usize = 4;
    // Expected totals: the same engines run directly on the same
    // models, summed over every *computed* request (the per-client
    // repeat is a cache hit and must contribute nothing).
    let (mut frames, mut obligations, mut generalizations, mut k_reached) = (0u64, 0u64, 0u64, 0u64);
    for j in 0..N {
        let (succ, bad) = safety_model(j);
        let kripke = build(succ, 0, &[bad]);
        let run = check_safety(&kripke, &[bad], &Budget::unlimited()).expect("unbudgeted");
        frames += run.stats.frames;
        obligations += run.stats.obligations;
        generalizations += run.stats.generalizations;
        let (succ, bad) = liveness_model(j);
        let kripke = build(succ, 0, &[bad]);
        let run = check_liveness(&kripke, &[bad], &Budget::unlimited()).expect("unbudgeted");
        frames += run.stats.frames;
        obligations += run.stats.obligations;
        generalizations += run.stats.generalizations;
        k_reached += run.k_reached;
    }

    let solo: Vec<String> = (0..N)
        .map(|j| run_script(&quiet_service(1), &check_script(j)))
        .collect();
    let service = quiet_service(2);
    let outputs: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..N)
            .map(|j| {
                let service = &service;
                scope.spawn(move || run_script(service, &check_script(j)))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (j, concurrent) in outputs.iter().enumerate() {
        assert_eq!(
            concurrent, &solo[j],
            "check client {j}'s transcript changed under concurrency"
        );
    }

    let stats = service.handle_line("{\"id\":9,\"verb\":\"stats\"}").line;
    let doc = safety_liveness::service::json::parse(&stats).unwrap();
    let check = doc
        .get("result")
        .and_then(|r| r.get("check"))
        .expect("stats carries a check block");
    let count = |key: &str| check.get(key).and_then(Json::as_u64).unwrap();
    assert_eq!(count("frames"), frames, "{stats}");
    assert_eq!(count("obligations"), obligations, "{stats}");
    assert_eq!(count("generalizations"), generalizations, "{stats}");
    assert_eq!(count("k_reached"), k_reached, "{stats}");
    // Cache accounting: one computed safety + one computed liveness
    // query per client, one repeat hit per client, no cross-client
    // sharing (the models differ by construction).
    let cache = check.get("cache").expect("check cache block");
    let cached = |key: &str| cache.get(key).and_then(Json::as_u64).unwrap();
    assert_eq!(cached("hits"), N as u64, "{stats}");
    assert_eq!(cached("misses"), 2 * N as u64, "{stats}");
    assert_eq!(cached("entries"), 2 * N as u64, "{stats}");
    assert_eq!(cached("collisions"), 0, "{stats}");
}
