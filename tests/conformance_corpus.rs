//! Replays the checked-in conformance regression corpus under plain
//! `cargo test -q`, so every shrunk reproducer ever appended by
//! `slfuzz --append-corpus` stays fixed forever — even for contributors
//! who never run `scripts/verify.sh`.

use std::path::Path;

#[test]
fn conformance_corpus_replays_clean() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("scripts/conform_corpus.jsonl");
    let report = sl_conform::corpus::replay(&path)
        .unwrap_or_else(|e| panic!("corpus at {} unreadable: {e}", path.display()));
    assert!(
        report.replayed > 0,
        "corpus at {} is empty — it ships seeded",
        path.display()
    );
    assert!(
        report.failures.is_empty(),
        "{} corpus regressions:\n{}",
        report.failures.len(),
        report.failures.join("\n")
    );
}

#[test]
fn corpus_lines_are_canonical_json() {
    // Every non-comment line must survive a decode/encode round trip,
    // so `corpus::append`'s byte-level dedup actually dedups.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("scripts/conform_corpus.jsonl");
    let entries = sl_conform::corpus::load(&path).expect("corpus loads");
    for (lineno, parsed) in entries {
        let case = parsed.unwrap_or_else(|e| panic!("corpus line {lineno} unparsable: {e}"));
        let line = case.to_line();
        let reparsed = sl_conform::Case::from_line(&line).expect("round trip parses");
        assert_eq!(reparsed.to_line(), line, "non-canonical corpus line");
    }
}
