//! Cross-crate integration: runtime monitoring and enforcement — the
//! Schneider connection the paper highlights (enforceable security
//! policies = safety properties; security automata = Büchi automata
//! accepting safe languages).

use safety_liveness::buchi::{Monitor, SecurityAutomaton, Verdict};
use safety_liveness::ltl::{decompose_formula, is_safety_formula, parse, translate};
use safety_liveness::omega::{all_lassos, Alphabet};

fn sigma() -> Alphabet {
    Alphabet::ab()
}

#[test]
fn monitor_accepts_exactly_the_good_prefixes() {
    // For a safety property, the monitor's verdict on a finite trace is
    // "Ok" iff the trace extends to some word in the property. Check
    // against a brute-force oracle over lasso extensions.
    let s = sigma();
    for text in ["a", "G (a -> X b)", "b R a"] {
        let f = parse(&s, text).unwrap();
        assert!(is_safety_formula(&s, &f), "{text} must be safety");
        let automaton = translate(&s, &f);
        let monitor = Monitor::new(&automaton);
        // All traces of length <= 4.
        for trace in safety_liveness::omega::all_words(&s, 4) {
            let mut m = monitor.clone();
            let (verdict, _) = m.run(&trace);
            // Oracle: does some lasso word extend the trace inside L?
            let extendable = all_lassos(&s, 2, 2).iter().any(|tail| {
                let whole = tail.prepend(&trace);
                automaton.accepts(&whole)
            });
            assert_eq!(
                verdict == Verdict::Ok,
                extendable,
                "{text} on trace {}",
                trace.display(&s)
            );
        }
    }
}

#[test]
fn monitoring_a_property_monitors_its_safety_part() {
    // For an arbitrary property, the monitor equals the monitor of its
    // safety closure (Theorem 6's practical content: the closure is the
    // strongest monitorable approximation).
    let s = sigma();
    for text in ["a & F !a", "a U b", "G F a"] {
        let f = parse(&s, text).unwrap();
        let d = decompose_formula(&s, &f);
        let monitor_full = Monitor::new(&d.automaton);
        let monitor_safety = Monitor::new(&d.safety);
        for trace in safety_liveness::omega::all_words(&s, 4) {
            let (v1, c1) = monitor_full.clone().run(&trace);
            let (v2, c2) = monitor_safety.clone().run(&trace);
            assert_eq!(v1, v2, "{text} on {}", trace.display(&s));
            assert_eq!(c1, c2, "{text} on {}", trace.display(&s));
        }
    }
}

#[test]
fn enforcement_output_is_a_maximal_good_prefix() {
    let s = sigma();
    let f = parse(&s, "b R a").unwrap(); // "a until released by b" safety
    let automaton = translate(&s, &f);
    for trace in safety_liveness::omega::all_words(&s, 4) {
        let mut enforcer = SecurityAutomaton::new(&automaton);
        let allowed = enforcer.enforce(&trace);
        // The allowed prefix is a prefix of the trace ...
        assert!(allowed.is_prefix_of(&trace));
        // ... and itself passes the monitor.
        let mut m = Monitor::new(&automaton);
        let (verdict, _) = m.run(&allowed);
        assert_eq!(verdict, Verdict::Ok);
        // Maximality: if something was cut, adding one more symbol of
        // the original trace violates.
        if allowed.len() < trace.len() {
            let next = trace.at(allowed.len()).unwrap();
            let mut m = Monitor::new(&automaton);
            m.run(&allowed);
            assert_eq!(m.step(next), Verdict::Violation);
        }
    }
}

#[test]
fn liveness_enforcement_is_vacuous() {
    // The security automaton of a liveness property never truncates —
    // Schneider's unenforceability, mechanically.
    let s = sigma();
    for text in ["G F a", "F G !a", "F b"] {
        let automaton = translate(&s, &parse(&s, text).unwrap());
        for trace in safety_liveness::omega::all_words(&s, 4) {
            let mut enforcer = SecurityAutomaton::new(&automaton);
            let allowed = enforcer.enforce(&trace);
            assert_eq!(allowed, trace, "{text} truncated a trace");
        }
    }
}
