//! Cross-crate integration: runtime monitoring and enforcement — the
//! Schneider connection the paper highlights (enforceable security
//! policies = safety properties; security automata = Büchi automata
//! accepting safe languages).

use safety_liveness::buchi::{
    random_buchi, CompiledMonitor, Monitor, MonitorFleet, RandomConfig, SecurityAutomaton, Verdict,
};
use safety_liveness::ltl::{decompose_formula, is_safety_formula, parse, translate};
use safety_liveness::omega::{all_lassos, Alphabet, Symbol, Word};
use sl_support::{Budget, SplitMix};

fn sigma() -> Alphabet {
    Alphabet::ab()
}

#[test]
fn monitor_accepts_exactly_the_good_prefixes() {
    // For a safety property, the monitor's verdict on a finite trace is
    // "Ok" iff the trace extends to some word in the property. Check
    // against a brute-force oracle over lasso extensions.
    let s = sigma();
    for text in ["a", "G (a -> X b)", "b R a"] {
        let f = parse(&s, text).unwrap();
        assert!(is_safety_formula(&s, &f), "{text} must be safety");
        let automaton = translate(&s, &f);
        let monitor = Monitor::new(&automaton);
        // All traces of length <= 4.
        for trace in safety_liveness::omega::all_words(&s, 4) {
            let mut m = monitor.clone();
            let (verdict, _) = m.run(&trace);
            // Oracle: does some lasso word extend the trace inside L?
            let extendable = all_lassos(&s, 2, 2).iter().any(|tail| {
                let whole = tail.prepend(&trace);
                automaton.accepts(&whole)
            });
            assert_eq!(
                verdict == Verdict::Ok,
                extendable,
                "{text} on trace {}",
                trace.display(&s)
            );
        }
    }
}

#[test]
fn monitoring_a_property_monitors_its_safety_part() {
    // For an arbitrary property, the monitor equals the monitor of its
    // safety closure (Theorem 6's practical content: the closure is the
    // strongest monitorable approximation).
    let s = sigma();
    for text in ["a & F !a", "a U b", "G F a"] {
        let f = parse(&s, text).unwrap();
        let d = decompose_formula(&s, &f);
        let monitor_full = Monitor::new(&d.automaton);
        let monitor_safety = Monitor::new(&d.safety);
        for trace in safety_liveness::omega::all_words(&s, 4) {
            let (v1, c1) = monitor_full.clone().run(&trace);
            let (v2, c2) = monitor_safety.clone().run(&trace);
            assert_eq!(v1, v2, "{text} on {}", trace.display(&s));
            assert_eq!(c1, c2, "{text} on {}", trace.display(&s));
        }
    }
}

#[test]
fn enforcement_output_is_a_maximal_good_prefix() {
    let s = sigma();
    let f = parse(&s, "b R a").unwrap(); // "a until released by b" safety
    let automaton = translate(&s, &f);
    for trace in safety_liveness::omega::all_words(&s, 4) {
        let mut enforcer = SecurityAutomaton::new(&automaton);
        let allowed = enforcer.enforce(&trace);
        // The allowed prefix is a prefix of the trace ...
        assert!(allowed.is_prefix_of(&trace));
        // ... and itself passes the monitor.
        let mut m = Monitor::new(&automaton);
        let (verdict, _) = m.run(&allowed);
        assert_eq!(verdict, Verdict::Ok);
        // Maximality: if something was cut, adding one more symbol of
        // the original trace violates.
        if allowed.len() < trace.len() {
            let next = trace.at(allowed.len()).unwrap();
            let mut m = Monitor::new(&automaton);
            m.run(&allowed);
            assert_eq!(m.step(next), Verdict::Violation);
        }
    }
}

#[test]
fn compiled_monitor_agrees_with_monitor_on_ltl_policies() {
    // The dense-table compiled monitor is a drop-in for the subset
    // monitor: same verdict at every step, same (verdict, settle)
    // pair from `run`, over every short trace of safety and
    // non-safety formulas alike.
    let s = sigma();
    for text in ["a", "G (a -> X b)", "b R a", "a U b", "G F a", "a & F !a"] {
        let automaton = translate(&s, &parse(&s, text).unwrap());
        let monitor = Monitor::new(&automaton);
        let compiled = CompiledMonitor::new(&automaton).unwrap();
        for trace in safety_liveness::omega::all_words(&s, 5) {
            let (v1, c1) = monitor.clone().run(&trace);
            let (v2, c2) = compiled.clone().run(&trace);
            assert_eq!((v1, c1), (v2, c2), "{text} on {}", trace.display(&s));
        }
    }
}

#[test]
fn compiled_monitor_agrees_with_monitor_on_random_automata() {
    // Property check over generated automata and random traces that mix
    // valid symbols, out-of-alphabet symbols, and post-violation
    // continuations: step-by-step verdict parity between the compiled
    // and subset monitors.
    let s = sigma();
    for seed in 0..60u64 {
        let mut rng = SplitMix::new(0xC0_4D00 + seed);
        let b = random_buchi(
            &s,
            seed,
            RandomConfig {
                states: 1 + (seed as usize % 6),
                density_percent: 20 + (seed as u32 * 13) % 70,
                accepting_percent: 60,
            },
        );
        let mut monitor = Monitor::new(&b);
        let mut compiled = CompiledMonitor::new(&b).unwrap();
        for step in 0..40 {
            // ~1 in 10 symbols is out-of-alphabet; the rest uniform.
            let sym = if rng.below(10) == 0 {
                Symbol(u16::MAX)
            } else {
                Symbol(rng.below(s.len()) as u16)
            };
            let (v1, v2) = (monitor.step(sym), compiled.step(sym));
            assert_eq!(v1, v2, "seed {seed} step {step}");
            assert_eq!(compiled.verdict(), v2, "seed {seed} step {step} verdict()");
        }
    }
}

#[test]
fn compiled_monitor_minimization_is_sound_and_never_larger() {
    // Hopcroft minimization must preserve the monitor's language
    // (checked by product walk) and never grow the state count.
    let s = sigma();
    for seed in 0..40u64 {
        let b = random_buchi(
            &s,
            1000 + seed,
            RandomConfig {
                states: 2 + (seed as usize % 5),
                density_percent: 35 + (seed as u32 * 7) % 60,
                accepting_percent: 50,
            },
        );
        let minimized = CompiledMonitor::new(&b).unwrap();
        let raw = CompiledMonitor::without_minimization(&b).unwrap();
        assert!(
            minimized.num_states() <= raw.num_states(),
            "seed {seed}: minimization grew the table"
        );
        assert!(
            minimized.agrees_with(&raw),
            "seed {seed}: minimization changed the language"
        );
    }
}

#[test]
fn fleet_sessions_match_lone_monitors_over_desynchronized_traces() {
    // A fleet is just N compiled monitors in a struct-of-arrays; each
    // slot must track its lone twin exactly even when sessions are
    // stepped different amounts before a shared `step_all` pass.
    let s = sigma();
    let automaton = translate(&s, &parse(&s, "G (a -> X b)").unwrap());
    let compiled = CompiledMonitor::new(&automaton).unwrap();
    let mut fleet = MonitorFleet::new(&compiled);
    let mut lone: Vec<CompiledMonitor> = Vec::new();
    let mut rng = SplitMix::new(99);
    for i in 0..24 {
        let slot = fleet.spawn();
        assert_eq!(slot, i);
        lone.push(compiled.clone());
        // Desynchronize: advance this session a random few steps.
        for _ in 0..rng.below(5) {
            let sym = Symbol(rng.below(s.len()) as u16);
            fleet.step(slot, sym);
            lone[slot].step(sym);
        }
    }
    // Shared passes, including an out-of-alphabet symbol.
    let mut shared: Vec<Symbol> = (0..30).map(|_| Symbol(rng.below(s.len()) as u16)).collect();
    shared.push(Symbol(u16::MAX));
    for &sym in &shared {
        fleet.step_all(sym);
        for m in &mut lone {
            m.step(sym);
        }
    }
    for (slot, m) in lone.iter().enumerate() {
        assert_eq!(fleet.verdict(slot), m.verdict(), "slot {slot}");
    }
    let want = lone.iter().fold((0, 0, 0), |mut t, m| {
        match m.verdict() {
            Verdict::Ok => t.0 += 1,
            Verdict::Violation => t.1 += 1,
            Verdict::Unknown => t.2 += 1,
        }
        t
    });
    assert_eq!(fleet.tally(), want);
}

#[test]
fn compiled_monitor_settles_like_the_monitor_under_budget() {
    // Budgeted twins: both monitors either settle on the same
    // (verdict, consumed) pair or exhaust the same budget.
    let s = sigma();
    let automaton = translate(&s, &parse(&s, "b R a").unwrap());
    let trace = Word::new(&[
        s.symbol("a").unwrap(),
        s.symbol("a").unwrap(),
        s.symbol("b").unwrap(),
        s.symbol("b").unwrap(),
    ]);
    for budget in 1..=6u64 {
        let mut m = Monitor::new(&automaton);
        let mut c = CompiledMonitor::new(&automaton).unwrap();
        let got_m = m.run_with_budget(&trace, &Budget::unlimited().with_steps(budget));
        let got_c = c.run_with_budget(&trace, &Budget::unlimited().with_steps(budget));
        match (got_m, got_c) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "budget {budget}"),
            (Err(_), Err(_)) => {}
            (a, b) => panic!("budget {budget}: monitor {a:?} vs compiled {b:?}"),
        }
    }
}

#[test]
fn liveness_enforcement_is_vacuous() {
    // The security automaton of a liveness property never truncates —
    // Schneider's unenforceability, mechanically.
    let s = sigma();
    for text in ["G F a", "F G !a", "F b"] {
        let automaton = translate(&s, &parse(&s, text).unwrap());
        for trace in safety_liveness::omega::all_words(&s, 4) {
            let mut enforcer = SecurityAutomaton::new(&automaton);
            let allowed = enforcer.enforce(&trace);
            assert_eq!(allowed, trace, "{text} truncated a trace");
        }
    }
}
