//! Acceptance tests for the interned automaton core
//! (`sl_buchi::interned`): incremental simulation maintenance must be
//! *bit-identical* to from-scratch computation over long seeded
//! mutation sequences, on-the-fly counterexamples must replay on the
//! raw (unquotiented) operands, and the lazy macro-state arena must
//! not scale with dead padding — the memory-regression gate for the
//! 10^4-state tier.

use safety_liveness::buchi::{
    antichain::antichain_stats, included_onthefly, included_onthefly_with_cache, random_buchi,
    scratch_quotient, Buchi, BuchiBuilder, Inclusion, InternedGraph, QuotientCache, RandomConfig,
};
use safety_liveness::omega::Alphabet;
use sl_support::rng::SplitMix;

/// The editable shape of an automaton: acceptance bits plus the
/// per-(state, symbol-index) successor lists. Mutations edit this and
/// rebuild, since [`Buchi`] itself is immutable.
struct Shape {
    accepting: Vec<bool>,
    succ: Vec<Vec<Vec<usize>>>,
}

fn shape_of(b: &Buchi) -> Shape {
    let n = b.num_states();
    Shape {
        accepting: (0..n).map(|q| b.is_accepting(q)).collect(),
        succ: (0..n)
            .map(|q| {
                b.alphabet()
                    .symbols()
                    .map(|sym| b.successors(q, sym).to_vec())
                    .collect()
            })
            .collect(),
    }
}

fn build(sigma: &Alphabet, shape: &Shape) -> Buchi {
    let mut builder = BuchiBuilder::new(sigma.clone());
    let ids: Vec<usize> = shape.accepting.iter().map(|&acc| builder.add_state(acc)).collect();
    for (q, by_sym) in shape.succ.iter().enumerate() {
        for (s, sym) in sigma.symbols().enumerate() {
            for &r in &by_sym[s] {
                builder.add_transition(ids[q], sym, ids[r]);
            }
        }
    }
    builder.build(ids[0])
}

/// One seeded random edit: toggle an acceptance bit, add or remove a
/// transition, or graft a fresh state reachable from an existing one.
fn mutate(sigma: &Alphabet, shape: &mut Shape, rng: &mut SplitMix) {
    let n = shape.accepting.len();
    let nsyms = sigma.len();
    match rng.below(5) {
        0 => {
            let q = rng.below(n);
            shape.accepting[q] = !shape.accepting[q];
        }
        1 | 2 => {
            // Add a transition (idempotent if it already exists).
            let (q, s, r) = (rng.below(n), rng.below(nsyms), rng.below(n));
            if !shape.succ[q][s].contains(&r) {
                shape.succ[q][s].push(r);
                shape.succ[q][s].sort_unstable();
            }
        }
        3 => {
            // Remove a transition if one exists at the drawn slot.
            let (q, s) = (rng.below(n), rng.below(nsyms));
            if !shape.succ[q][s].is_empty() {
                let at = rng.below(shape.succ[q][s].len());
                shape.succ[q][s].remove(at);
            }
        }
        _ => {
            // Graft a fresh state with one incoming and one outgoing
            // edge, keeping the mutation sequence from shrinking the
            // automaton into triviality.
            let from = rng.below(n);
            let s = rng.below(nsyms);
            let back = rng.below(n);
            shape.accepting.push(rng.flip());
            shape.succ.push(vec![Vec::new(); nsyms]);
            let fresh = shape.accepting.len() - 1;
            if !shape.succ[from][s].contains(&fresh) {
                shape.succ[from][s].push(fresh);
                shape.succ[from][s].sort_unstable();
            }
            shape.succ[fresh][s].push(back);
        }
    }
}

/// The tentpole invariant: after every `advance`, the incrementally
/// maintained quotient (and the simulation rows behind it) must be
/// bit-for-bit what a from-scratch computation produces — the
/// greatest fixpoint is unique, and dirty-SCC seeding must converge to
/// exactly it. 3 seeds x 55 mutations, every step checked.
#[test]
fn incremental_quotient_is_bit_identical_to_scratch_over_mutation_sequences() {
    let sigma = Alphabet::ab();
    for seed in 0..3u64 {
        let mut rng = SplitMix::new(0x1117 + seed);
        let mut graph = InternedGraph::with_cap(4096);
        let mut prev = random_buchi(
            &sigma,
            seed,
            RandomConfig {
                states: 6,
                density_percent: 55,
                accepting_percent: 40,
            },
        );
        graph.quotient(&prev);
        let mut shape = shape_of(&prev);
        for step in 0..55u32 {
            mutate(&sigma, &mut shape, &mut rng);
            let next = build(&sigma, &shape);
            graph.advance(&prev, &next);
            let node = graph.node(&next).expect("advance interns the new version");
            let incremental = node.quotient();
            assert_eq!(
                *incremental,
                scratch_quotient(&next),
                "seed {seed} step {step}: incremental quotient != scratch"
            );
            // The rows themselves — not just the quotient built from
            // them — must land on the unique greatest fixpoint.
            let mut fresh = InternedGraph::new();
            fresh.quotient(&next);
            assert_eq!(
                graph.node(&next).expect("still interned").rows(),
                fresh.node(&next).expect("just interned").rows(),
                "seed {seed} step {step}: incremental rows != scratch rows"
            );
            prev = next;
        }
        let stats = graph.stats();
        assert_eq!(stats.advances, 55, "seed {seed}: every step advanced");
        assert!(
            stats.clean_sccs > 0,
            "seed {seed}: no mutation ever carried a clean SCC over — \
             the incremental path was never actually exercised"
        );
    }
}

/// On-the-fly counterexamples are found in the *quotiented* product
/// but must replay on the raw automata: the quotient preserves the
/// language, so a lasso separating the quotients separates the
/// originals.
#[test]
fn onthefly_counterexamples_replay_on_raw_automata() {
    let sigma = Alphabet::ab();
    let cfg = RandomConfig {
        states: 8,
        density_percent: 45,
        accepting_percent: 35,
    };
    let mut counterexamples = 0usize;
    for seed in 0..60u64 {
        let a = random_buchi(&sigma, 2 * seed, cfg);
        let b = random_buchi(&sigma, 2 * seed + 1, cfg);
        match included_onthefly(&a, &b).expect("8-state pairs stay within budget") {
            Inclusion::Holds => {}
            Inclusion::CounterExample(w) => {
                counterexamples += 1;
                assert!(a.accepts(&w), "seed {seed}: witness {w} not accepted by the raw left");
                assert!(!b.accepts(&w), "seed {seed}: witness {w} accepted by the raw right");
            }
        }
    }
    assert!(counterexamples >= 10, "only {counterexamples} counterexamples in the sweep");
}

/// A small live core drowned in `padding` unreachable, successor-free
/// states. The eager engine pays for the padding (its simulation and
/// successor sets are sized by the raw state count); the lazy engine
/// trims first and never sees it.
fn padded(sigma: &Alphabet, seed: u64, padding: usize) -> Buchi {
    let core = random_buchi(
        sigma,
        seed,
        RandomConfig {
            states: 15,
            density_percent: 55,
            accepting_percent: 40,
        },
    );
    let mut shape = shape_of(&core);
    for _ in 0..padding {
        shape.accepting.push(false);
        shape.succ.push(vec![Vec::new(); sigma.len()]);
    }
    build(sigma, &shape)
}

/// The memory-regression gate: deciding inclusion over a 10^4-state
/// padded pair must not materialize more macro-states than the eager
/// engine's final antichain on the trimmed pair, times a small
/// constant. The arena gauge (`peak_macro_states`) counts every
/// macro-state ever created, so unreachable-driven blowup cannot hide
/// behind subsumption.
#[test]
fn lazy_search_peak_macro_states_ignores_dead_padding() {
    let sigma = Alphabet::ab();
    // An inclusion that HOLDS, so the search runs to exhaustion (the
    // worst case for the arena) instead of stopping at a witness.
    let a = padded(&sigma, 77, 10_000);
    let b = padded(&sigma, 77, 10_001);

    // Eager yardstick on the trimmed twins (the eager engine on the
    // raw 10^4-state pair is exactly the quadratic this test exists
    // to prevent).
    let (a_trim, b_trim) = (a.trim_unreachable(), b.trim_unreachable());
    assert!(a_trim.num_states() <= 15 && b_trim.num_states() <= 15);
    let before = antichain_stats();
    let eager = safety_liveness::buchi::included_antichain(&a_trim, &b_trim)
        .expect("trimmed 15-state pair stays within budget");
    let eager_delta = antichain_stats().delta_since(&before);
    assert!(eager.holds(), "identical cores: inclusion must hold");
    let eager_final = eager_delta.final_antichain;
    assert!(eager_final > 0, "eager search built an empty antichain");

    let cache = QuotientCache::new();
    let before = antichain_stats();
    let lazy = included_onthefly_with_cache(&cache, &a, &b)
        .expect("padded pair stays within budget once trimmed");
    let lazy_delta = antichain_stats().delta_since(&before);
    assert!(lazy.holds(), "engines must agree on the padded pair");

    let lazy_peak = lazy_delta.peak_macro_states;
    assert!(lazy_peak > 0, "lazy search recorded no arena growth");
    assert!(
        lazy_peak <= 4 * eager_final + 8,
        "lazy peak {lazy_peak} macro-states vs eager final antichain {eager_final}: \
         the arena is scaling with the 10^4-state padding"
    );
}
