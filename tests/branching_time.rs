//! Cross-crate integration: the branching-time framework (Section 4) —
//! q-example table, the three feasible decomposition combinations, the
//! Theorem 5 impossibility, and the Rabin-tree-automata closure against
//! the tree-level `fcl` oracle.

use safety_liveness::omega::Alphabet;
use safety_liveness::rabin::{accepts, decompose as rabin_decompose, rfcl, RabinTreeBuilder};
use safety_liveness::trees::{
    enumerate_regular_trees, fcl_contains_bounded, ncl_contains_bounded, ncl_refuted_by_path,
    parse_ctl, q_examples, two_path_witness, RegularTree,
};

fn sigma() -> Alphabet {
    Alphabet::ab()
}

fn universe() -> Vec<RegularTree> {
    let s = sigma();
    let mut trees = enumerate_regular_trees(&s, 2, 1);
    trees.extend(enumerate_regular_trees(&s, 1, 2));
    trees.push(two_path_witness(&s));
    trees
}

fn continuations() -> Vec<RegularTree> {
    let s = sigma();
    vec![
        RegularTree::constant(s.clone(), s.symbol("a").unwrap(), 1),
        RegularTree::constant(s.clone(), s.symbol("b").unwrap(), 1),
        two_path_witness(&s),
    ]
}

#[test]
fn q_table_classifications() {
    // The headline claims of Section 4.3, in one sweep:
    // universally safe properties equal their fcl on the universe;
    // the 'b' variants have universal ncl; the 'a' variants have
    // universal fcl but non-universal ncl.
    let s = sigma();
    let examples = q_examples(&s);
    let by_name = |n: &str| examples.iter().find(|e| e.name == n).unwrap();

    // Universally safe: q1, q2, q6 (and q0 with empty closure).
    for name in ["q1", "q2", "q6"] {
        let q = by_name(name);
        for y in universe() {
            let in_q = y.satisfies(&q.formula);
            let in_fcl = fcl_contains_bounded(&y, &q.formula, 2, &continuations(), 1).is_ok();
            assert_eq!(in_q, in_fcl, "{name} vs fcl on {y:?}");
        }
    }

    // fcl universal for the A-variants.
    for name in ["q4a", "q5a"] {
        let q = by_name(name);
        for y in universe() {
            fcl_contains_bounded(&y, &q.formula, 2, &continuations(), 1)
                .unwrap_or_else(|e| panic!("{name}: fcl refuted at depth {}", e.depth));
        }
    }

    // ncl universal for the E-variants.
    for name in ["q4b", "q5b"] {
        let q = by_name(name);
        for y in universe() {
            ncl_contains_bounded(&y, &q.formula, 2, &continuations(), 1)
                .unwrap_or_else(|e| panic!("{name}: ncl refuted at depth {}", e.depth));
        }
    }

    // ncl NOT universal for the A-variants: absolute refutations via
    // the two-path witness.
    let witness = two_path_witness(&s);
    let q4a_path = safety_liveness::ltl::parse(&s, "F G !a").unwrap();
    assert!(ncl_refuted_by_path(&witness, 1, &[vec![1]], &q4a_path));
    let q5a_path = safety_liveness::ltl::parse(&s, "G F a").unwrap();
    assert!(ncl_refuted_by_path(&witness, 1, &[vec![0]], &q5a_path));
}

#[test]
fn theorem4_three_combinations_exist_for_af_a() {
    // Theorem 4: decompositions exist as ES∧EL, US∧UL, ES∧UL. We verify
    // the lattice-level recipe concretely for a = AF a over the sampled
    // universe: taking s = fcl.a (US part, universal here) and
    // l = a ∨ ¬(closure) — since fcl(AF a) = A_tot, the decomposition
    // collapses to a = A_tot ∧ a, whose first component is universally
    // safe and whose second is (vacuously) universally live per the
    // bounded checkers.
    let s = sigma();
    let af_a = parse_ctl(&s, "AF a").unwrap();
    for y in universe() {
        // s-part: A_tot contains y (trivially safe); l-part: y ∈ AF a
        // iff y ∈ a ∧ ..., so the meet is exactly membership in AF a.
        let in_a = y.satisfies(&af_a);
        let fcl_universal = fcl_contains_bounded(&y, &af_a, 2, &continuations(), 1).is_ok();
        assert!(fcl_universal, "fcl(AF a) should contain {y:?}");
        let _ = in_a;
    }
}

#[test]
fn theorem5_impossibility_concrete() {
    // AF a has fcl = A_tot and ncl < A_tot: by Theorem 5 there is no
    // decomposition into a universally safe and an existentially live
    // property. We verify the hypotheses mechanically (the conclusion
    // is Theorem 5 itself, verified exhaustively at the lattice level
    // in the sl-lattice tests).
    let s = sigma();
    let af_a = parse_ctl(&s, "AF a").unwrap();
    // Hypothesis 1: fcl(AF a) = A_tot on the universe (checked above as
    // well, re-checked here for the record).
    for y in universe() {
        assert!(fcl_contains_bounded(&y, &af_a, 2, &continuations(), 1).is_ok());
    }
    // Hypothesis 2: ncl(AF a) < A_tot — absolute witness: a tree with
    // an all-b path (cut the other branch; the surviving path violates
    // F a).
    let a = s.symbol("a").unwrap();
    let b = s.symbol("b").unwrap();
    let witness = RegularTree::new(
        s.clone(),
        vec![b, b, a],
        vec![vec![1, 2], vec![1], vec![2]],
        0,
    );
    let f_a = safety_liveness::ltl::parse(&s, "F a").unwrap();
    assert!(ncl_refuted_by_path(&witness, 1, &[vec![1]], &f_a));
}

#[test]
fn rabin_rfcl_matches_tree_fcl() {
    // Theorem 9's closure: L(rfcl B) = fcl(L(B)), spot-checked for the
    // AF b automaton against the bounded tree-level oracle on all
    // 2-node binary regular trees.
    let s = sigma();
    let a = s.symbol("a").unwrap();
    let bb = s.symbol("b").unwrap();
    let mut builder = RabinTreeBuilder::new(s.clone(), 2);
    let wait = builder.add_state();
    let done = builder.add_state();
    builder.add_transition(wait, a, &[wait, wait]);
    builder.add_transition(wait, bb, &[done, done]);
    builder.add_transition(done, a, &[done, done]);
    builder.add_transition(done, bb, &[done, done]);
    let automaton = builder.build_buchi(wait, &[done]);

    let closure = rfcl(&automaton);
    let af_b = parse_ctl(&s, "AF b").unwrap();
    let conts = vec![
        RegularTree::constant(s.clone(), a, 2),
        RegularTree::constant(s.clone(), bb, 2),
    ];
    for t in enumerate_regular_trees(&s, 2, 2) {
        let automaton_says = accepts(&closure, &t);
        let oracle_says = fcl_contains_bounded(&t, &af_b, 2, &conts, 2).is_ok();
        assert_eq!(automaton_says, oracle_says, "{t:?}");
        // Membership in the base automaton agrees with CTL.
        assert_eq!(accepts(&automaton, &t), t.satisfies(&af_b), "{t:?}");
    }

    // And the Theorem 9 decomposition identity holds on the same trees.
    let d = rabin_decompose(&automaton);
    assert_eq!(d.check_on(&enumerate_regular_trees(&s, 2, 2)), None);
}

#[test]
fn sequences_bridge_linear_and_branching() {
    // "Trees can be sequences": a lasso word embedded as a unary tree
    // satisfies the branching property iff the word satisfies the LTL
    // path property — checked across the q/p example pairs.
    use safety_liveness::ltl::eval;
    let s = sigma();
    let pairs = [
        ("AGF a", "G F a"),
        ("AFG !a", "F G !a"),
        ("a & AF !a", "a & F !a"),
        ("EGF a", "G F a"), // E = A on sequences
        ("EFG !a", "F G !a"),
    ];
    for w in safety_liveness::omega::all_lassos(&s, 2, 2) {
        let tree = RegularTree::from_lasso(&w, s.clone(), 1);
        for (ctl_text, ltl_text) in pairs {
            let ctl = parse_ctl(&s, ctl_text).unwrap();
            let ltl = safety_liveness::ltl::parse(&s, ltl_text).unwrap();
            assert_eq!(
                tree.satisfies(&ctl),
                eval(&ltl, &w),
                "{ctl_text} vs {ltl_text} on {w}"
            );
        }
    }
}

#[test]
fn ncl_below_fcl_pointwise() {
    // The paper's hypothesis for Theorem 3 in branching time:
    // ncl.p <= fcl.p (every finite-depth prefix is non-total). On the
    // universe: ncl-membership implies fcl-membership.
    let s = sigma();
    for name in ["q3a", "q3b", "q4a", "q5a"] {
        let q = q_examples(&s).into_iter().find(|e| e.name == name).unwrap();
        for y in universe() {
            let in_ncl = ncl_contains_bounded(&y, &q.formula, 2, &continuations(), 1).is_ok();
            let in_fcl = fcl_contains_bounded(&y, &q.formula, 2, &continuations(), 1).is_ok();
            if in_ncl {
                assert!(in_fcl, "{name}: ncl ⊆ fcl violated on {y:?}");
            }
        }
    }
}
