//! End-to-end degradation drills for the fault-tolerant execution
//! layer: each test forces one failure mode through a public entry
//! point and checks that the workspace degrades (typed error, sticky
//! `Unknown`, isolated sweep item) instead of panicking or aborting.
//!
//! The tests stay green under an environment fault drill
//! (`SL_FAULT_RATE` > 0): sites consulted by the global plan are
//! accounted for explicitly rather than assumed quiet.

use sl_buchi::{complement_budgeted, Monitor, Verdict};
use sl_ltl::{parse, translate};
use sl_omega::{Alphabet, Symbol, Word};
use sl_support::{fault, par, Budget, FaultPlan, SlError};
use std::time::Duration;

/// Path 1 — untrusted input: a symbol outside the policy's alphabet
/// must settle the monitor on [`Verdict::Unknown`], never panic, and
/// the verdict must be sticky until reset.
#[test]
fn out_of_alphabet_symbol_degrades_to_unknown() {
    let sigma = Alphabet::ab();
    let policy = translate(&sigma, &parse(&sigma, "G a").unwrap());
    let mut monitor = Monitor::new(&policy);

    let a = sigma.symbol("a").unwrap();
    assert_eq!(monitor.step(a), Verdict::Ok);
    // Alphabet::ab() has two symbols; 999 is far out of range.
    assert_eq!(monitor.step(Symbol(999)), Verdict::Unknown);
    // Sticky: even a perfectly fine symbol cannot restore a verdict
    // once the trace contained an uninterpretable event.
    assert_eq!(monitor.step(a), Verdict::Unknown);

    // run() reports where the trace became uninterpretable.
    monitor.reset();
    let trace = Word::parse(&sigma, "a a b");
    let (verdict, consumed) = monitor.run(&trace);
    // "G a" closes to "always a": the b at position 3 is in-alphabet,
    // so this is a genuine Violation, not Unknown.
    assert_eq!((verdict, consumed), (Verdict::Violation, 3));
}

/// Path 2 — a wall-clock deadline that expires mid-complementation
/// must surface as [`SlError::BudgetExceeded`] with nonzero `spent`
/// (the algorithm made progress before the deadline hit), not as a
/// panic or a silent wrong answer.
#[test]
fn expired_deadline_mid_complementation_is_budget_exceeded() {
    let sigma = Alphabet::ab();
    let b = translate(&sigma, &parse(&sigma, "G F a").unwrap());

    let budget = Budget::unlimited().with_deadline_in(Duration::ZERO);
    let err = complement_budgeted(&b, &budget)
        .expect_err("an already-expired deadline must abort the complementation");
    assert!(
        err.is_budget_exceeded(),
        "expected BudgetExceeded, got: {err}"
    );
    match err.root() {
        SlError::BudgetExceeded { phase, spent } => {
            assert_eq!(*phase, "buchi.complement");
            assert!(*spent > 0, "the meter charged before the deadline check");
        }
        other => panic!("expected BudgetExceeded root, got: {other:?}"),
    }

    // A sane budget on the same input succeeds: the failure above was
    // the deadline, not the input.
    let ok = complement_budgeted(&b, &Budget::unlimited());
    match ok {
        Ok(_) => {}
        Err(err) if err.root().is_fault_injected() => {} // env fault drill
        Err(err) => panic!("unlimited budget must succeed, got: {err}"),
    }
}

/// Path 3 — a [`FaultPlan`]-poisoned sweep item panics inside the
/// parallel sweep; the report isolates exactly that item (plus any
/// items the *environment* drill poisons at the `par.worker` site) and
/// every surviving sibling's result is byte-identical to a fault-free
/// sequential run.
#[test]
fn poisoned_sweep_item_is_isolated_without_poisoning_siblings() {
    // A deterministic local plan, independent of the environment: find
    // the first index it poisons so the test targets exactly one item.
    let plan = FaultPlan::new(2003, 0.05);
    let poisoned = (0u64..1000)
        .find(|&i| plan.should_fault("test.sweep", i))
        .expect("rate 0.05 must fire within 1000 draws");

    let items: Vec<u64> = (0..=poisoned.max(31)).collect();
    let report = par::par_map_isolated_with(4, &items, |&i| {
        if i == poisoned {
            plan.inject_panic("test.sweep", i);
        }
        i * i + 1
    });

    // The failure set is exactly: our poisoned item, plus whatever the
    // environment drill (if any) injects at the sweep's own site.
    let env = fault::global();
    let expected: Vec<usize> = items
        .iter()
        .map(|&i| i as usize)
        .filter(|&i| i as u64 == poisoned || env.should_fault("par.worker", i as u64))
        .collect();
    assert_eq!(report.failure_indices(), expected);
    assert_eq!(report.len(), items.len());
    assert_eq!(report.panicked_count(), expected.len());
    assert_eq!(report.failed_count(), 0);
    assert!(report.degraded());

    // No environment drill (the normal tier-1 run): exactly one item
    // failed, and it is the one the local plan targeted.
    if !env.is_enabled() {
        assert_eq!(report.failure_indices(), vec![poisoned as usize]);
        assert_eq!(report.ok_count(), items.len() - 1);
    }

    // Every surviving sibling is byte-identical to the fault-free
    // sequential computation.
    for (index, &value) in report.oks() {
        assert_eq!(value, items[index] * items[index] + 1);
    }
}
