//! Determinism guarantees of the `sl-support` migration.
//!
//! Two regressions this PR must never reintroduce:
//!
//! 1. **Parallel == sequential.** `sl_support::par` feeds the E4/E9/E10
//!    theorem sweeps; their claim tables are only trustworthy if the
//!    parallel fold is byte-identical to the single-threaded one. We
//!    re-run the E4 decomposition sweep over the full modular
//!    complemented lattice corpus at 1 and 4 workers and compare every
//!    record.
//! 2. **PRNG streams are frozen.** `sl_support::rng::SplitMix` replaced
//!    the private generator in `sl-buchi::random`; every recorded seed
//!    in EXPERIMENTS.md depends on the streams matching bit-for-bit.
//!    An inline copy of the old generator pins the contract.

use safety_liveness::lattice::{
    decompose, enumerate_closures, generators, random_closure, verify_decomposition,
};
use sl_support::par;
use sl_support::rng::{SplitMix, GOLDEN_GAMMA};

/// The E4 per-closure record: decomposition components and whether each
/// verified, for every element of the lattice.
fn e4_record(
    lattice: &safety_liveness::lattice::FiniteLattice,
    cl: &safety_liveness::lattice::Closure,
) -> Vec<(usize, usize, bool)> {
    (0..lattice.len())
        .filter_map(|a| {
            let d = decompose(lattice, cl, a).ok()?;
            let ok = verify_decomposition(lattice, cl, cl, &a, &d);
            Some((d.safety, d.liveness, ok))
        })
        .collect()
}

#[test]
fn par_map_matches_sequential_on_e4_corpus() {
    for (name, lattice) in generators::modular_complemented_corpus() {
        // Same corpus split as the E4 binary: exhaustive where feasible,
        // seeded sampling on the larger lattices.
        let closures = if lattice.len() <= 10 {
            enumerate_closures(&lattice)
        } else {
            (0..40).map(|seed| random_closure(&lattice, seed)).collect()
        };
        let sequential = par::par_map_with(1, &closures, |cl| e4_record(&lattice, cl));
        let parallel = par::par_map_with(4, &closures, |cl| e4_record(&lattice, cl));
        assert_eq!(
            sequential, parallel,
            "{name}: parallel E4 sweep diverged from sequential"
        );
    }
}

#[test]
fn par_sweep_matches_sequential_ordering() {
    let f = |seed: usize| {
        let mut rng = SplitMix::new(seed as u64);
        (seed, rng.next_u64())
    };
    assert_eq!(par::par_sweep_with(1, 257, f), par::par_sweep_with(4, 257, f));
}

/// Bit-for-bit copy of the SplitMix64 generator that used to live as a
/// private struct in `crates/buchi/src/random.rs`. If this test fails,
/// `sl_support::rng::SplitMix` no longer reproduces the historical
/// streams and every recorded seed in EXPERIMENTS.md is invalidated.
struct OldBuchiSplitMix(u64);

impl OldBuchiSplitMix {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[test]
fn promoted_prng_reproduces_the_old_buchi_stream() {
    let mut old = OldBuchiSplitMix(0xDEAD);
    let mut new = SplitMix::new(0xDEAD);
    for i in 0..64 {
        assert_eq!(
            old.next_u64(),
            new.next_u64(),
            "stream diverged at draw {i} for seed 0xDEAD"
        );
    }
}

#[test]
fn core_random_closure_preadvanced_stream_is_reachable() {
    // `sl-lattice::random_closure` historically started one gamma ahead
    // of the seed; it now seeds `SplitMix::new(seed + GOLDEN_GAMMA)`.
    // Pin that the mapping is exactly "skip nothing, shift the seed".
    let seed = 0xBEEF_u64;
    let mut old_style = OldBuchiSplitMix(seed.wrapping_add(GOLDEN_GAMMA));
    let mut new_style = SplitMix::new(seed.wrapping_add(GOLDEN_GAMMA));
    for _ in 0..64 {
        assert_eq!(old_style.next_u64(), new_style.next_u64());
    }
}
