//! Cross-crate integration: the linear-time pipeline
//! LTL → Büchi → closure → decomposition, checked against the direct
//! lasso-word semantics at every stage.

use safety_liveness::buchi::{
    classify, closure, decompose, equivalent, is_liveness, is_safety, universal, Classification,
};
use safety_liveness::ltl::{eval, parse, rem_examples, translate};
use safety_liveness::omega::{all_lassos, rem, Alphabet, LinearProperty};

fn sigma() -> Alphabet {
    Alphabet::ab()
}

/// A corpus of formulas exercising all operator shapes.
const CORPUS: &[&str] = &[
    "false",
    "true",
    "a",
    "!a",
    "a & F !a",
    "F G !a",
    "G F a",
    "a U b",
    "b R a",
    "G (a -> F b)",
    "G (a -> X b)",
    "F (a & X a)",
    "(F a) & (F b)",
    "(G a) | (X X b)",
    "a W b",
];

#[test]
fn automata_agree_with_semantics_on_corpus() {
    let s = sigma();
    for text in CORPUS {
        let f = parse(&s, text).unwrap();
        let m = translate(&s, &f);
        for w in all_lassos(&s, 3, 3) {
            assert_eq!(m.accepts(&w), eval(&f, &w), "{text} on {w}");
        }
    }
}

#[test]
fn decomposition_theorem_on_corpus() {
    // Theorem 2 instantiated on the Boolean algebra of ω-regular
    // languages: every corpus language splits into safety ∩ liveness,
    // verified exactly — with all complements obtained from negated
    // formulas and subset constructions, never rank-based.
    use safety_liveness::buchi::{included_with_complement, intersection, union};
    use safety_liveness::ltl::decompose_formula;
    let s = sigma();
    for text in CORPUS {
        let f = parse(&s, text).unwrap();
        let d = decompose_formula(&s, &f);
        assert!(
            is_safety(&d.safety).unwrap(),
            "{text}: safety part not safe"
        );
        assert!(
            is_liveness(&d.liveness).unwrap(),
            "{text}: liveness part not live"
        );
        // Exact identity L(B) = L(B_S) ∩ L(B_L):
        // ⊆: B inside both parts, via their ready-made complements.
        assert!(
            included_with_complement(&d.automaton, &d.not_safety).holds(),
            "{text}: B ⊄ safety part"
        );
        assert!(
            included_with_complement(&d.automaton, &d.not_liveness).holds(),
            "{text}: B ⊄ liveness part"
        );
        // ⊇: the meet inside B, via ¬B = translation of ¬φ.
        let meet = intersection(&d.safety, &d.liveness);
        let not_b = translate(&s, &f.clone().not());
        assert!(
            included_with_complement(&meet, &not_b).holds(),
            "{text}: meet ⊄ B"
        );
        // And the lasso-level cross-check.
        let _ = union(&d.safety, &d.liveness); // exercise union too
        for w in all_lassos(&s, 3, 3) {
            assert!(d.identity_holds_on(&w), "{text} on {w}");
        }
    }
}

#[test]
fn closure_is_the_strongest_safety_property() {
    // Theorem 6 (machine closure) on automata: for each corpus formula,
    // cl(B) is included in every safety property of the corpus that
    // contains L(B). Inclusion checks use the negated-formula
    // complements, so no rank-based complementation is needed even for
    // the larger corpus automata.
    use safety_liveness::buchi::included_with_complement;
    use safety_liveness::ltl::is_safety_formula;
    let s = sigma();
    let corpus: Vec<_> = CORPUS.iter().map(|t| parse(&s, t).unwrap()).collect();
    for (i, f) in corpus.iter().enumerate() {
        let m = translate(&s, f);
        let cl = closure(&m);
        for (j, g) in corpus.iter().enumerate() {
            if !is_safety_formula(&s, g) {
                continue;
            }
            let not_g = translate(&s, &g.clone().not());
            if included_with_complement(&m, &not_g).holds() {
                assert!(
                    included_with_complement(&cl, &not_g).holds(),
                    "cl(corpus[{i}]) not below safety corpus[{j}]"
                );
            }
        }
    }
}

#[test]
fn rem_table_full_classification() {
    // E1 in miniature: the paper's Section 2.3 table.
    let s = sigma();
    let expected = [
        ("p0", Classification::Safety),
        ("p1", Classification::Safety),
        ("p2", Classification::Safety),
        ("p3", Classification::Neither),
        ("p4", Classification::Liveness),
        ("p5", Classification::Liveness),
        ("p6", Classification::Both),
    ];
    for (example, (name, want)) in rem_examples(&s).iter().zip(expected) {
        assert_eq!(example.name, name);
        let m = translate(&s, &example.formula);
        assert_eq!(classify(&m).unwrap(), want, "{name}");
        // And the automaton agrees with the semantic oracle everywhere.
        let oracles = rem::all(&s);
        let oracle = &oracles[example.name[1..].parse::<usize>().unwrap()];
        for w in all_lassos(&s, 2, 3) {
            assert_eq!(m.accepts(&w), oracle.contains(&w), "{name} on {w}");
        }
    }
}

#[test]
fn paper_closure_identities() {
    // lcl.p3 = p1; lcl.p4 = lcl.p5 = Σ^ω.
    let s = sigma();
    let ex = rem_examples(&s);
    let automaton = |i: usize| translate(&s, &ex[i].formula);
    assert!(equivalent(&closure(&automaton(3)), &automaton(1))
        .unwrap()
        .is_ok());
    for i in [4, 5] {
        assert!(universal(&closure(&automaton(i))).unwrap().is_ok());
    }
    // And lcl.p1 = p1 (safety properties are closed).
    assert!(equivalent(&closure(&automaton(1)), &automaton(1))
        .unwrap()
        .is_ok());
}

#[test]
fn negation_duality_through_the_pipeline() {
    // For each formula: classify(φ) safety ⇔ ¬φ co-safety-ish; more
    // precisely the complement automaton of a safety property is
    // live... not in general — but safety(φ) ⇒ the *closure* of ¬φ is
    // everything union-ed with φ's complement; here we just check the
    // pipeline is consistent: L(¬φ) = complement of L(φ) on samples.
    let s = sigma();
    for text in ["a U b", "G F a", "a & F !a", "G (a -> X b)"] {
        let f = parse(&s, text).unwrap();
        let pos = translate(&s, &f);
        let neg = translate(&s, &f.clone().not());
        for w in all_lassos(&s, 3, 3) {
            assert_ne!(pos.accepts(&w), neg.accepts(&w), "{text} on {w}");
        }
    }
}

#[test]
fn conjunction_of_decomposition_parts_via_product() {
    // Exact equality L(B) = L(B_S ∩ B_L), split into inclusions whose
    // complements are each tractable: ¬(B_S) by subset construction,
    // ¬(B_L) = ¬B ∩ B_S with ¬B rank-complemented on the SMALL original
    // automaton only (never on the product).
    use safety_liveness::buchi::{
        complement, complement_safety, included_with_complement, intersection,
    };
    let s = sigma();
    for text in ["a U b", "F G !a", "a & F !a"] {
        let m = translate(&s, &parse(&s, text).unwrap());
        let d = decompose(&m);
        let not_m = complement(&m).unwrap();
        let not_safety = complement_safety(&d.safety);
        let not_liveness = intersection(&not_m, &d.safety);
        // B ⊆ B_S and B ⊆ B_L.
        assert!(included_with_complement(&m, &not_safety).holds(), "{text}");
        assert!(
            included_with_complement(&m, &not_liveness).holds(),
            "{text}"
        );
        // B_S ∩ B_L ⊆ B.
        let meet = intersection(&d.safety, &d.liveness);
        assert!(included_with_complement(&meet, &not_m).holds(), "{text}");
    }
}
