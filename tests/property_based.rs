//! Property-based tests (proptest) over the whole workspace: random
//! formulas, words, posets, lattices, closures, games, and automata.

use proptest::prelude::*;
use safety_liveness::buchi::{
    closure, complement_safety, decompose, intersection, random_buchi, union, RandomConfig,
};
use safety_liveness::games::{solve, verify, ParityGame, Player};
use safety_liveness::lattice::{
    decompose as lattice_decompose, generators, random_closure, verify_decomposition, Poset,
};
use safety_liveness::ltl::{eval, nnf, simplify, translate, Ltl};
use safety_liveness::omega::{all_lassos, Alphabet, LassoWord, Symbol, Word};

fn sigma() -> Alphabet {
    Alphabet::ab()
}

/// Strategy: arbitrary LTL formulas over {a, b} of bounded depth.
fn ltl_strategy() -> impl Strategy<Value = Ltl> {
    let leaf = prop_oneof![
        Just(Ltl::True),
        Just(Ltl::False),
        Just(Ltl::Ap(Symbol(0))),
        Just(Ltl::Ap(Symbol(1))),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| f.not()),
            inner.clone().prop_map(|f| f.next()),
            inner.clone().prop_map(|f| f.finally()),
            inner.clone().prop_map(|f| f.globally()),
            (inner.clone(), inner.clone()).prop_map(|(f, g)| f.and(g)),
            (inner.clone(), inner.clone()).prop_map(|(f, g)| f.or(g)),
            (inner.clone(), inner.clone()).prop_map(|(f, g)| f.until(g)),
            (inner.clone(), inner).prop_map(|(f, g)| f.release(g)),
        ]
    })
}

/// Strategy: lasso words with stems and cycles over {a, b}.
fn lasso_strategy() -> impl Strategy<Value = LassoWord> {
    (
        proptest::collection::vec(0u16..2, 0..4),
        proptest::collection::vec(0u16..2, 1..4),
    )
        .prop_map(|(stem, cycle)| {
            let stem: Word = stem.into_iter().map(Symbol).collect();
            let cycle: Word = cycle.into_iter().map(Symbol).collect();
            LassoWord::new(&stem, &cycle)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn nnf_and_simplify_preserve_semantics(f in ltl_strategy(), w in lasso_strategy()) {
        let direct = eval(&f, &w);
        prop_assert_eq!(eval(&nnf(&f), &w), direct);
        prop_assert_eq!(eval(&simplify(&f), &w), direct);
    }

    #[test]
    fn translation_agrees_with_evaluation(f in ltl_strategy(), w in lasso_strategy()) {
        let s = sigma();
        let m = translate(&s, &f);
        prop_assert_eq!(m.accepts(&w), eval(&f, &w));
    }

    #[test]
    fn lasso_normalization_is_semantic(
        stem in proptest::collection::vec(0u16..2, 0..4),
        cycle in proptest::collection::vec(0u16..2, 1..4),
        unroll in 0usize..3,
    ) {
        // Unrolling the cycle into the stem leaves the word unchanged.
        let stem: Word = stem.into_iter().map(Symbol).collect();
        let cycle: Word = cycle.into_iter().map(Symbol).collect();
        let original = LassoWord::new(&stem, &cycle);
        let mut extended_stem = stem;
        for _ in 0..unroll {
            extended_stem = extended_stem.concat(&cycle);
        }
        let unrolled = LassoWord::new(&extended_stem, &cycle);
        prop_assert_eq!(&original, &unrolled);
        // And positions agree far out.
        for i in 0..12 {
            prop_assert_eq!(original.at(i), unrolled.at(i));
        }
    }

    #[test]
    fn lasso_suffix_shifts_positions(w in lasso_strategy(), k in 0usize..6, i in 0usize..6) {
        prop_assert_eq!(w.suffix(k).at(i), w.at(k + i));
    }

    #[test]
    fn downsets_of_random_posets_are_distributive_lattices(
        edges in proptest::collection::vec((0usize..5, 0usize..5), 0..8),
    ) {
        // Build a DAG by orienting edges upward; down-sets must form a
        // distributive lattice (Birkhoff).
        let covers: Vec<(usize, usize)> = edges
            .into_iter()
            .filter(|(a, b)| a < b)
            .collect();
        let poset = Poset::from_covers(5, &covers).unwrap();
        let (lattice, _) = generators::downset_lattice(&poset).unwrap();
        prop_assert!(lattice.is_distributive());
        prop_assert!(lattice.is_modular());
    }

    #[test]
    fn random_closures_satisfy_closure_laws(seed in 0u64..500) {
        let lattice = generators::boolean(3);
        let cl = random_closure(&lattice, seed);
        for a in 0..lattice.len() {
            prop_assert!(lattice.leq(a, cl.apply(a)));
            prop_assert_eq!(cl.apply(cl.apply(a)), cl.apply(a));
            for b in 0..lattice.len() {
                if lattice.leq(a, b) {
                    prop_assert!(lattice.leq(cl.apply(a), cl.apply(b)));
                }
            }
        }
    }

    #[test]
    fn decomposition_on_random_closures(seed in 0u64..200, element in 0usize..8) {
        let lattice = generators::boolean(3);
        let cl = random_closure(&lattice, seed);
        let d = lattice_decompose(&lattice, &cl, element).unwrap();
        prop_assert!(verify_decomposition(&lattice, &cl, &cl, &element, &d));
    }

    #[test]
    fn zielonka_solutions_verify(
        owners in proptest::collection::vec(prop::bool::ANY, 2..8),
        priorities in proptest::collection::vec(0u32..6, 2..8),
        raw_edges in proptest::collection::vec((0usize..8, 0usize..8), 1..20),
    ) {
        let n = owners.len().min(priorities.len());
        let owners: Vec<Player> = owners[..n]
            .iter()
            .map(|&b| if b { Player::Even } else { Player::Odd })
            .collect();
        let priorities = priorities[..n].to_vec();
        let mut succ = vec![Vec::new(); n];
        for (a, b) in raw_edges {
            let (a, b) = (a % n, b % n);
            if !succ[a].contains(&b) {
                succ[a].push(b);
            }
        }
        for (v, outs) in succ.iter_mut().enumerate() {
            if outs.is_empty() {
                outs.push(v); // ensure totality
            }
        }
        let game = ParityGame::new(owners, priorities, succ);
        let solution = solve(&game);
        prop_assert!(verify(&game, &solution).is_ok());
    }

    #[test]
    fn buchi_boolean_operations_are_semantic(seed1 in 0u64..50, seed2 in 0u64..50) {
        let s = sigma();
        let cfg = RandomConfig { states: 4, ..RandomConfig::default() };
        let m1 = random_buchi(&s, seed1, cfg);
        let m2 = random_buchi(&s, seed2, cfg);
        let u = union(&m1, &m2);
        let i = intersection(&m1, &m2);
        for w in all_lassos(&s, 2, 2) {
            prop_assert_eq!(u.accepts(&w), m1.accepts(&w) || m2.accepts(&w));
            prop_assert_eq!(i.accepts(&w), m1.accepts(&w) && m2.accepts(&w));
        }
    }

    #[test]
    fn closure_complement_partition(seed in 0u64..80) {
        // For random machines: cl(B) and ¬cl(B) partition Σ^ω.
        let s = sigma();
        let m = random_buchi(&s, seed, RandomConfig { states: 4, ..RandomConfig::default() });
        let cl = closure(&m);
        let not_cl = complement_safety(&cl);
        for w in all_lassos(&s, 2, 2) {
            prop_assert_ne!(cl.accepts(&w), not_cl.accepts(&w));
        }
    }

    #[test]
    fn random_decompositions_meet_back(seed in 0u64..80) {
        let s = sigma();
        let m = random_buchi(&s, seed, RandomConfig { states: 4, ..RandomConfig::default() });
        let d = decompose(&m);
        prop_assert_eq!(d.check_sampled(&m, 2, 3), None);
    }

    #[test]
    fn finite_tree_prefix_laws(
        labels1 in proptest::collection::vec(0u16..2, 1..6),
        labels2 in proptest::collection::vec(0u16..2, 1..6),
    ) {
        // Build two random unary-path trees and check the prefix order
        // is reflexive/antisymmetric/transitive-ish on them.
        use safety_liveness::trees::FiniteTree;
        let path_tree = |labels: &[u16]| {
            let entries: Vec<(Vec<u32>, Symbol)> = labels
                .iter()
                .enumerate()
                .map(|(i, &l)| (vec![0u32; i], Symbol(l)))
                .collect();
            FiniteTree::from_entries(&entries).unwrap()
        };
        let t1 = path_tree(&labels1);
        let t2 = path_tree(&labels2);
        prop_assert!(t1.is_prefix_of(&t1));
        if t1.is_prefix_of(&t2) && t2.is_prefix_of(&t1) {
            prop_assert_eq!(&t1, &t2);
        }
        // Concatenation produces extensions.
        let joined = t1.concat(&t2);
        prop_assert!(t1.is_prefix_of(&joined));
    }
}
