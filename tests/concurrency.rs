//! Multi-client stress tests for the concurrent daemon: N threads
//! replaying seeded scripted sessions against one shared [`Service`]
//! (and, over TCP, one `serve_tcp` supervisor) must observe
//!
//! * per-connection transcripts byte-identical to a solo run of the
//!   same script — no cross-talk through the shared registry, the
//!   sharded query cache, or the shared complement cache;
//! * `quit` ending only the issuing connection while `shutdown`
//!   drains every connection to EOF;
//! * admission control shedding connections beyond `max_conns` with
//!   one typed `overloaded` line;
//! * `stats` counters (per-verb, errors, and the new
//!   `connections`/`active_sessions` gauges) summing exactly across
//!   concurrent sessions.

use safety_liveness::service::{serve, serve_tcp, Json, Service, ServiceConfig};
use sl_support::FaultPlan;
use std::io::{BufRead, BufReader, Cursor, Read, Write};
use std::net::{TcpListener, TcpStream};

fn quiet_service() -> Service {
    Service::new(ServiceConfig {
        fault: FaultPlan::disabled(),
        threads: 1,
        ..ServiceConfig::default()
    })
}

/// Client `j`'s seeded session: every name is namespaced `t{j}_`, so
/// concurrent sessions share engines and caches but no state. Eight
/// lines — 2 defines, 2 classifies (one an error on an undefined
/// target), include, monitor-step, decompose, universal.
fn script(j: usize) -> String {
    let ns = format!("t{j}_");
    let (phi, psi) = match j % 3 {
        0 => ("G a", "F b"),
        1 => ("G F a", "a U b"),
        _ => ("F G b", "G (a -> F b)"),
    };
    [
        format!("{{\"id\":1,\"verb\":\"define\",\"name\":\"{ns}a\",\"ltl\":\"{phi}\",\"alphabet\":[\"a\",\"b\"]}}"),
        format!("{{\"id\":2,\"verb\":\"define\",\"name\":\"{ns}b\",\"ltl\":\"{psi}\",\"alphabet\":[\"a\",\"b\"]}}"),
        format!("{{\"id\":3,\"verb\":\"classify\",\"target\":\"{ns}a\"}}"),
        format!("{{\"id\":4,\"verb\":\"include\",\"left\":\"{ns}a\",\"right\":\"{ns}b\"}}"),
        format!("{{\"id\":5,\"verb\":\"monitor-step\",\"monitor\":\"{ns}m\",\"target\":\"{ns}a\",\"symbols\":[\"a\",\"b\"]}}"),
        format!("{{\"id\":6,\"verb\":\"decompose\",\"target\":\"{ns}b\"}}"),
        format!("{{\"id\":7,\"verb\":\"universal\",\"target\":\"{ns}a\"}}"),
        format!("{{\"id\":8,\"verb\":\"classify\",\"target\":\"{ns}ghost\"}}"),
    ]
    .join("\n")
        + "\n"
}

fn run_solo(j: usize) -> String {
    let service = quiet_service();
    let mut out = Vec::new();
    serve(&service, &mut Cursor::new(script(j)), &mut out).unwrap();
    String::from_utf8(out).unwrap()
}

#[test]
fn concurrent_sessions_are_byte_identical_to_solo_runs() {
    const N: usize = 6;
    let service = quiet_service();
    let outputs: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..N)
            .map(|j| {
                let service = &service;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    serve(service, &mut Cursor::new(script(j)), &mut out).unwrap();
                    String::from_utf8(out).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (j, concurrent) in outputs.iter().enumerate() {
        assert_eq!(
            concurrent,
            &run_solo(j),
            "client {j}'s transcript changed under concurrency"
        );
    }
}

#[test]
fn stats_counters_sum_exactly_across_concurrent_sessions() {
    const N: usize = 4;
    let service = quiet_service();
    std::thread::scope(|scope| {
        for j in 0..N {
            let service = &service;
            scope.spawn(move || {
                let mut out = Vec::new();
                serve(service, &mut Cursor::new(script(j)), &mut out).unwrap();
            });
        }
    });
    let stats = service.handle_line("{\"id\":9,\"verb\":\"stats\"}").line;
    let doc = safety_liveness::service::json::parse(&stats).unwrap();
    let result = doc.get("result").expect("stats result");
    let requests = result.get("requests").expect("requests block");
    let count = |verb: &str| requests.get(verb).and_then(Json::as_u64).unwrap();
    let n = N as u64;
    assert_eq!(count("define"), 2 * n, "{stats}");
    assert_eq!(count("classify"), 2 * n, "{stats}");
    assert_eq!(count("include"), n, "{stats}");
    assert_eq!(count("monitor-step"), n, "{stats}");
    assert_eq!(count("decompose"), n, "{stats}");
    assert_eq!(count("universal"), n, "{stats}");
    assert_eq!(count("stats"), 1, "{stats}");
    assert_eq!(count("total"), 8 * n + 1, "{stats}");
    // One undefined-target classify per session.
    assert_eq!(result.get("errors").and_then(Json::as_u64), Some(n), "{stats}");
    assert_eq!(result.get("io_errors").and_then(Json::as_u64), Some(0), "{stats}");
    // Every session bracketed the gauges; none is live now (the stats
    // line above went through handle_line, not a serving loop).
    assert_eq!(result.get("connections").and_then(Json::as_u64), Some(n), "{stats}");
    assert_eq!(result.get("active_sessions").and_then(Json::as_u64), Some(0), "{stats}");
    // The query cache saw every query exactly once per session —
    // disjoint names mean no cross-session hits, and the per-shard
    // counters roll up to the totals.
    let cache = result.get("cache").expect("cache block");
    let shard_sum = |key: &str| -> u64 {
        cache
            .get("shards")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|s| s.get(key).and_then(Json::as_u64).unwrap())
            .sum()
    };
    for key in ["hits", "misses", "entries", "clears", "collisions"] {
        assert_eq!(
            cache.get(key).and_then(Json::as_u64).unwrap(),
            shard_sum(key),
            "per-shard {key} counters must sum to the rollup: {stats}"
        );
    }
}

#[test]
fn quit_ends_one_tcp_connection_and_shutdown_drains_the_rest() {
    let service = quiet_service();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::scope(|scope| {
        let supervisor = scope.spawn(|| serve_tcp(&service, &listener));
        // A connects and stays idle mid-session.
        let mut a = TcpStream::connect(addr).unwrap();
        a.write_all(b"{\"id\":1,\"verb\":\"stats\"}\n").unwrap();
        let mut a_reader = BufReader::new(a.try_clone().unwrap());
        let mut first = String::new();
        a_reader.read_line(&mut first).unwrap();
        assert!(first.contains("\"ok\":true"), "{first}");
        // B works and quits; only B's stream reaches EOF.
        let mut b = TcpStream::connect(addr).unwrap();
        b.write_all(b"{\"id\":1,\"verb\":\"stats\"}\n{\"id\":2,\"verb\":\"quit\"}\n")
            .unwrap();
        let mut b_text = String::new();
        BufReader::new(&b).read_to_string(&mut b_text).unwrap();
        assert!(b_text.contains("\"bye\":true"), "{b_text}");
        assert_eq!(b_text.lines().count(), 2, "{b_text}");
        // A still works after B's quit...
        a.write_all(b"{\"id\":2,\"verb\":\"stats\"}\n").unwrap();
        let mut second = String::new();
        a_reader.read_line(&mut second).unwrap();
        assert!(second.contains("\"ok\":true"), "{second}");
        // ...until C drains the daemon, which closes A's idle socket.
        let mut c = TcpStream::connect(addr).unwrap();
        c.write_all(b"{\"id\":1,\"verb\":\"shutdown\"}\n").unwrap();
        let mut c_text = String::new();
        BufReader::new(&c).read_to_string(&mut c_text).unwrap();
        assert!(c_text.contains("\"drained\":true"), "{c_text}");
        let mut rest = String::new();
        a_reader.read_to_string(&mut rest).unwrap();
        assert_eq!(rest, "", "A's idle connection must see EOF after the drain");
        supervisor.join().unwrap().unwrap();
    });
}

#[test]
fn connections_beyond_max_conns_get_one_typed_overloaded_line() {
    let service = Service::new(ServiceConfig {
        fault: FaultPlan::disabled(),
        threads: 1,
        max_conns: 1,
        ..ServiceConfig::default()
    });
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::scope(|scope| {
        let supervisor = scope.spawn(|| serve_tcp(&service, &listener));
        let mut a = TcpStream::connect(addr).unwrap();
        a.write_all(b"{\"id\":1,\"verb\":\"stats\"}\n").unwrap();
        let mut a_reader = BufReader::new(a.try_clone().unwrap());
        let mut line = String::new();
        a_reader.read_line(&mut line).unwrap(); // A is admitted and live
        // B is over the cap: one typed line, then EOF.
        let b = TcpStream::connect(addr).unwrap();
        let mut b_text = String::new();
        BufReader::new(&b).read_to_string(&mut b_text).unwrap();
        assert!(b_text.contains("\"overloaded\""), "{b_text}");
        assert!(b_text.contains("connection cap"), "{b_text}");
        assert_eq!(b_text.lines().count(), 1, "{b_text}");
        // A's slot frees on quit; the next connection is admitted.
        a.write_all(b"{\"id\":2,\"verb\":\"quit\"}\n").unwrap();
        let mut rest = String::new();
        a_reader.read_to_string(&mut rest).unwrap();
        assert!(rest.contains("\"bye\":true"), "{rest}");
        let mut c = TcpStream::connect(addr).unwrap();
        c.write_all(b"{\"id\":1,\"verb\":\"shutdown\"}\n").unwrap();
        let mut c_text = String::new();
        BufReader::new(&c).read_to_string(&mut c_text).unwrap();
        assert!(c_text.contains("\"bye\":true"), "admitted after the slot freed: {c_text}");
        supervisor.join().unwrap().unwrap();
    });
}

#[test]
fn concurrent_tcp_clients_see_solo_transcripts_over_one_daemon() {
    const N: usize = 4;
    let service = quiet_service();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::scope(|scope| {
        let supervisor = scope.spawn(|| serve_tcp(&service, &listener));
        let transcripts: Vec<String> = {
            let handles: Vec<_> = (0..N)
                .map(|j| {
                    scope.spawn(move || {
                        let mut stream = TcpStream::connect(addr).unwrap();
                        let _ = stream.set_nodelay(true);
                        let mut reader = BufReader::new(stream.try_clone().unwrap());
                        let mut received = String::new();
                        for line in script(j).lines() {
                            stream.write_all(format!("{line}\n").as_bytes()).unwrap();
                            let mut reply = String::new();
                            reader.read_line(&mut reply).unwrap();
                            received.push_str(&reply);
                        }
                        received
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        };
        for (j, transcript) in transcripts.iter().enumerate() {
            assert_eq!(
                transcript,
                &run_solo(j),
                "TCP client {j}'s transcript changed under concurrency"
            );
        }
        let mut c = TcpStream::connect(addr).unwrap();
        c.write_all(b"{\"id\":1,\"verb\":\"shutdown\"}\n").unwrap();
        let mut c_text = String::new();
        BufReader::new(&c).read_to_string(&mut c_text).unwrap();
        assert!(c_text.contains("\"bye\":true"), "{c_text}");
        supervisor.join().unwrap().unwrap();
    });
}
