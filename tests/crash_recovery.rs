//! The acceptance drill for the durability layer: a long seeded daemon
//! session is driven through `sl_conform::crash_drill`, which kills a
//! persistent daemon at **every** journal record boundary (and once
//! more mid-record, with the journal truncated) and requires the
//! recovered daemon's remaining responses to be byte-identical to an
//! uninterrupted twin's.
//!
//! verify.sh runs this test at `SL_THREADS=1` and `SL_THREADS=8`; the
//! drill builds its services from `ServiceConfig::default()`, so the
//! thread knob flows through to batch fan-out.

use sl_conform::crash_drill;
use sl_support::SplitMix;

/// A seeded session of `total` requests: a few automaton definitions
/// (HOA-sourced — cheap to replay hundreds of times), then a stream
/// dominated by `monitor-step` (every one a journal record, hence a
/// kill point) over several concurrent monitor sessions, interleaved
/// with queries, redefinitions, decompositions, and the occasional
/// malformed line.
fn push(lines: &mut Vec<String>, id: &mut u64, body: String) {
    *id += 1;
    lines.push(format!("{{\"id\":{id},{body}}}"));
}

fn define(lines: &mut Vec<String>, id: &mut u64, rng: &mut SplitMix, name: &str) {
    let alphabet = sl_omega::Alphabet::ab();
    let b = sl_buchi::random_buchi(
        &alphabet,
        rng.next_u64(),
        sl_buchi::RandomConfig {
            states: 1 + rng.below(3),
            density_percent: 60,
            accepting_percent: 50,
        },
    );
    let hoa = sl_buchi::hoa::to_hoa(&b, name)
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n");
    push(lines, id, format!("\"verb\":\"define\",\"name\":\"{name}\",\"hoa\":\"{hoa}\""));
}

fn seeded_session(seed: u64, total: usize) -> Vec<String> {
    let mut rng = SplitMix::new(seed);
    let mut lines = Vec::with_capacity(total);
    let mut id = 0u64;
    let names = ["p0", "p1", "p2"];
    for name in names {
        define(&mut lines, &mut id, &mut rng, name);
    }
    while lines.len() < total {
        match rng.below(10) {
            // monitor-step dominates: each one is a kill point.
            0..=5 => {
                let symbols: Vec<&str> = (0..1 + rng.below(3))
                    .map(|_| match rng.below(8) {
                        0 => "\"zz\"",
                        n if n % 2 == 0 => "\"a\"",
                        _ => "\"b\"",
                    })
                    .collect();
                let monitor = format!("m{}", rng.below(4));
                let target = names[rng.below(names.len())];
                push(
                    &mut lines,
                    &mut id,
                    format!(
                        "\"verb\":\"monitor-step\",\"monitor\":\"{monitor}\",\"target\":\"{target}\",\"symbols\":[{}]",
                        symbols.join(",")
                    ),
                );
            }
            6 => {
                let name = names[rng.below(names.len())];
                define(&mut lines, &mut id, &mut rng, name);
            }
            7 => push(
                &mut lines,
                &mut id,
                format!("\"verb\":\"decompose\",\"target\":\"{}\"", names[rng.below(names.len())]),
            ),
            8 => push(
                &mut lines,
                &mut id,
                format!("\"verb\":\"classify\",\"target\":\"{}\"", names[rng.below(names.len())]),
            ),
            _ => {
                if rng.percent() < 15 {
                    lines.push("{not json".to_string());
                } else {
                    push(
                        &mut lines,
                        &mut id,
                        format!(
                            "\"verb\":\"include\",\"left\":\"{}\",\"right\":\"{}\"",
                            names[rng.below(names.len())],
                            names[rng.below(names.len())]
                        ),
                    );
                }
            }
        }
    }
    lines
}

#[test]
fn long_seeded_session_survives_a_kill_at_every_record_boundary() {
    let lines = seeded_session(2003, 208);
    assert!(lines.len() >= 200, "the acceptance drill needs a 200+-request session");
    crash_drill(&lines, 0).unwrap();
}

#[test]
fn long_seeded_session_survives_kills_across_snapshot_rotations() {
    let lines = seeded_session(7, 208);
    crash_drill(&lines, 16).unwrap();
}
