#!/usr/bin/env bash
# Tier-1 verification: build, test, and re-run every experiment, fully
# offline. This is the command the CI gate runs; it must succeed in a
# network-isolated container (the workspace has no registry
# dependencies — see tests/no_registry_deps.rs).
#
# Usage: scripts/verify.sh
#   SL_THREADS=N   bound the worker count of the parallel sweeps
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --release --offline

echo "== tests (offline) =="
cargo test -q --offline

echo "== experiments E1-E10 =="
cargo build --release --offline --workspace --bins
for exp in e1_rem_linear e2_figure1 e3_figure2 e4_decomposition \
           e5_buchi_decomposition e6_rem_branching e7_impossibility \
           e8_rabin e9_extremal e10_closure_ablation; do
  echo "-- $exp"
  "./target/release/$exp"
done

echo "verify.sh: all green"
