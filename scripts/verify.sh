#!/usr/bin/env bash
# Tier-1 verification: build, test, and re-run every experiment, fully
# offline. This is the command the CI gate runs; it must succeed in a
# network-isolated container (the workspace has no registry
# dependencies — see tests/no_registry_deps.rs).
#
# Usage: scripts/verify.sh
#   SL_THREADS=N   bound the worker count of the parallel sweeps
#
# Besides the fault-free tier-1 run, this script drills the
# fault-tolerant execution layer: the test suite and experiment sweeps
# must stay green under a deterministic seeded fault drill
# (SL_FAULT_RATE/SL_FAULT_SEED), degrading gracefully instead of
# aborting, and the parallel experiment tables must be byte-identical
# at any worker count.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --release --offline

echo "== tests (offline) =="
cargo test -q --offline

echo "== experiments E1-E11 =="
cargo build --release --offline --workspace --bins
for exp in e1_rem_linear e2_figure1 e3_figure2 e4_decomposition \
           e5_buchi_decomposition e6_rem_branching e7_impossibility \
           e8_rabin e9_extremal e10_closure_ablation; do
  echo "-- $exp"
  "./target/release/$exp"
done

echo "== incl-engines: onthefly vs antichain vs rank differential + E11 smoke =="
# The differential suite must agree under all three engine selections
# (the dispatcher is pinned once per process via SL_INCL_ENGINE).
for engine in onthefly antichain rank; do
  echo "-- differential suite (SL_INCL_ENGINE=$engine)"
  SL_INCL_ENGINE=$engine cargo test -q --offline --test inclusion_engines
done
# E11 smoke: few samples, short warmup; the binary itself fails if the
# engines disagree or the antichain engine loses >=5x headroom.
incl_tmp="$(mktemp -d)"
echo "-- e11_inclusion_engines (smoke)"
SL_BENCH_SAMPLES=5 SL_BENCH_WARMUP_MS=10 SL_BENCH_JSON_DIR="$incl_tmp" \
  ./target/release/e11_inclusion_engines
# The JSON artifact must exist, parse as the flat BENCH shape, and show
# the antichain engine no worse than 2x the rank-based median anywhere.
python3 - "$incl_tmp/BENCH_incl.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["suite"] == "incl", doc
records = {r["name"]: r for r in doc["records"]}
for name, r in records.items():
    assert r["median_ns"] > 0 and r["samples"] > 0, (name, r)
for suite in ("incl", "univ"):
    anti = records[f"{suite}/antichain/corpus"]["median_ns"]
    rank = records[f"{suite}/rank_uncached/corpus"]["median_ns"]
    assert anti <= 2 * rank, f"{suite}: antichain {anti}ns loses >2x to rank {rank}ns"
print(f"BENCH_incl.json ok: incl speedup "
      f"{records['incl/rank_uncached/corpus']['median_ns'] / records['incl/antichain/corpus']['median_ns']:.1f}x, "
      f"univ speedup "
      f"{records['univ/rank_uncached/corpus']['median_ns'] / records['univ/antichain/corpus']['median_ns']:.1f}x")
PY
rm -rf "$incl_tmp"

echo "== service: golden transcript, fault drill, E12 smoke =="
# The daemon must reproduce the golden transcript byte-for-byte at any
# worker count: intake, cache probes, and commits are sequential; only
# the batch fan-out is parallel, and its results are committed in item
# order.
svc_tmp="$(mktemp -d)"
for t in 1 2 8; do
  echo "-- sld golden transcript (SL_THREADS=$t)"
  SL_THREADS=$t ./target/release/sld --stdin < scripts/service_session.jsonl \
    > "$svc_tmp/session_t$t.out"
  cmp "$svc_tmp/session_t$t.out" scripts/service_session.golden
done
# Under the seeded fault drill the daemon degrades per-request — typed
# error responses, never a dead process: exit 0 and one response line
# per request line.
echo "-- sld fault drill (SL_FAULT_RATE=0.05, seeded)"
SL_FAULT_RATE=0.05 SL_FAULT_SEED=2003 ./target/release/sld --stdin \
  < scripts/service_session.jsonl > "$svc_tmp/session_drill.out"
req_lines="$(grep -c . scripts/service_session.jsonl)"
drill_lines="$(grep -c . "$svc_tmp/session_drill.out")"
if [ "$req_lines" != "$drill_lines" ]; then
  echo "sld fault drill dropped responses: $drill_lines/$req_lines" >&2
  exit 1
fi
echo "sld drill: $drill_lines/$req_lines responses, exit 0"
# E12 smoke: the binary fails itself if any scripted response errors,
# the cache is not transparent, or cache hits lose to recomputation.
echo "-- e12_service_throughput (smoke)"
SL_BENCH_SAMPLES=5 SL_BENCH_WARMUP_MS=10 SL_BENCH_JSON_DIR="$svc_tmp" \
  ./target/release/e12_service_throughput
python3 - "$svc_tmp/BENCH_svc.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["suite"] == "svc", doc
records = {r["name"]: r for r in doc["records"]}
for name in ("svc/define/hoa", "svc/include/cold", "svc/include/warm",
             "svc/batch/fanout", "svc/mc/clients1", "svc/mc/clients2",
             "svc/mc/clients4", "svc/mc/clients8"):
    r = records[name]
    assert r["median_ns"] > 0 and r["samples"] > 0, (name, r)
cold = records["svc/include/cold"]["median_ns"]
warm = records["svc/include/warm"]["median_ns"]
assert warm < cold, f"cache hits ({warm}ns) must beat recomputation ({cold}ns)"
# The multi-client saturation gate: 8 concurrent clients must deliver
# at least 3x the aggregate throughput of 1 (shared sharded caches +
# singleflight dedup the cold compute across connections, so this
# holds even on one core). Aggregate rps_n = n * reqs / t_n, so the
# bar rps_8 >= 3 * rps_1 is exactly 8 * t_1 >= 3 * t_8.
mc1 = records["svc/mc/clients1"]["median_ns"]
mc8 = records["svc/mc/clients8"]["median_ns"]
assert 8 * mc1 >= 3 * mc8, \
    f"8-client aggregate throughput only {8 * mc1 / mc8:.1f}x of 1-client (need >=3x)"
queries = 28  # the e12 query script: 24 inclusion pairs + 4 universality probes
print(f"BENCH_svc.json ok: cache-hit speedup {cold / warm:.1f}x, "
      f"warm {queries / (warm / 1e9):,.0f} requests/sec, "
      f"multi-client scaling {8 * mc1 / mc8:.1f}x at 8 clients")
PY
rm -rf "$svc_tmp"

echo "== concurrency: multi-client transcripts, stress, SIGKILL drill =="
# Every connection's transcript must be byte-identical to a solo run
# of the same script no matter how many clients share the daemon —
# at both worker counts, since the batch fan-out rides the same pool.
for t in 1 8; do
  echo "-- multi-client stress (release, SL_THREADS=$t)"
  SL_THREADS=$t cargo test -q --offline --release --test concurrency
done
# SIGKILL the real binary with three live connections mid-flight: the
# interleaved journal must recover and keep every acknowledged
# mutation, and each client's received stream must be a byte-prefix
# of its solo twin.
echo "-- concurrent SIGKILL drill (release)"
cargo test -q --offline --release -p sl-service --test concurrent_crash

echo "== monitor: compiled fast path golden + E13 smoke =="
# monitor-step sessions on safety targets ride the compiled dense-table
# fleet; the golden transcript pins the wire behavior (verdict streams,
# sticky unknown, atomic budget rejection, target-mismatch errors) at
# any worker count.
mon_tmp="$(mktemp -d)"
for t in 1 8; do
  echo "-- sld monitor transcript (SL_THREADS=$t)"
  SL_THREADS=$t ./target/release/sld --stdin < scripts/monitor_session.jsonl \
    > "$mon_tmp/monitor_t$t.out"
  cmp "$mon_tmp/monitor_t$t.out" scripts/monitor_session.golden
done
# E13 smoke: the binary fails itself if the three steppers disagree on
# any verdict, the fleet diverges from lone monitors, or the compiled
# table loses its >=10x headroom over the NFA-set baseline.
echo "-- e13_monitor_throughput (smoke)"
SL_BENCH_SAMPLES=5 SL_BENCH_WARMUP_MS=10 SL_BENCH_JSON_DIR="$mon_tmp" \
  ./target/release/e13_monitor_throughput
python3 - "$mon_tmp/BENCH_monitor.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["suite"] == "monitor", doc
records = {r["name"]: r for r in doc["records"]}
for name in ("monitor/nfa_set/safety", "monitor/subset/safety",
             "monitor/compiled/safety", "monitor/fleet/batch"):
    r = records[name]
    assert r["median_ns"] > 0 and r["samples"] > 0, (name, r)
nfa = records["monitor/nfa_set/safety"]["median_ns"]
compiled = records["monitor/compiled/safety"]["median_ns"]
ratio = nfa / compiled
assert ratio >= 10, f"compiled path only {ratio:.1f}x over the NFA-set baseline"
steps = 10_000  # the e13 trace length
print(f"BENCH_monitor.json ok: compiled {ratio:.1f}x over nfa_set, "
      f"{steps / (compiled / 1e9):,.0f} steps/sec")
PY
rm -rf "$mon_tmp"

echo "== conformance: corpus replay + differential fuzz + sabotage drill =="
# The conformance fuzzer cross-checks every engine against the paper's
# theorems: corpus replay first (regressions stay fixed forever), then a
# fixed-seed fuzz run of >=1000 cases per oracle under a wall-clock
# budget, gated on the JSON stats artifact.
conf_tmp="$(mktemp -d)"
echo "-- corpus replay (scripts/conform_corpus.jsonl)"
./target/release/slfuzz --corpus scripts/conform_corpus.jsonl --corpus-only
echo "-- fixed-seed fuzz (seed 2003, 1000 cases/oracle)"
./target/release/slfuzz --seed 2003 --cases 1000 --max-seconds 420 \
  --corpus scripts/conform_corpus.jsonl \
  --stable --stats-dir "$conf_tmp"
python3 - "$conf_tmp/BENCH_conform.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["suite"] == "conform" and doc["seed"] == 2003, doc
assert not doc["truncated"], "fuzz run blew its 420s wall-clock budget"
for o in doc["oracles"]:
    run = o["cases"]
    assert run >= 1000, f"{o['name']}: only {run} cases"
    assert o["passed"] + o["accepted_budget"] == run, o
    assert o["failures"] == 0, f"{o['name']}: {o['failures']} failures"
    # Budget-exhaustion acceptances must stay a sliver, not a loophole.
    acc = o["accepted_budget"]
    assert acc <= run // 10, f"{o['name']}: {acc} accepted"
assert doc["findings"] == [], doc["findings"]
names = sorted(o["name"] for o in doc["oracles"])
assert names == ["compiled", "crash", "hoa", "incl", "incl3", "lattice", "monitor",
                 "pdr", "session"], names
print(f"BENCH_conform.json ok: {sum(o['cases'] for o in doc['oracles'])} "
      f"cases across {len(names)} oracles, 0 findings")
PY
# The --stable artifact must be byte-identical run-to-run and at any
# thread count (the session oracle pins its own SL_THREADS internally).
echo "-- determinism (seed 2003 at SL_THREADS=1,8)"
for t in 1 8; do
  SL_THREADS=$t ./target/release/slfuzz --seed 2003 --cases 200 \
    --stable --stats "$conf_tmp/det_t$t.json" > /dev/null
done
cmp "$conf_tmp/det_t1.json" "$conf_tmp/det_t8.json"
echo "conform artifact byte-identical at SL_THREADS=1,8"
# Sabotage drill: with antichain subsumption deliberately broken the
# fuzzer must catch the bug (exit 1) and shrink it to <=8 states.
echo "-- sabotage drill (antichain-subsumption)"
if ./target/release/slfuzz --seed 2003 --cases 200 --oracle incl \
     --sabotage antichain-subsumption --stable \
     --stats "$conf_tmp/sabotage.json" > /dev/null 2>&1; then
  echo "sabotage drill NOT caught: slfuzz exited 0 with a broken engine" >&2
  exit 1
fi
python3 - "$conf_tmp/sabotage.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
findings = doc["findings"]
assert findings, "sabotage run produced no findings"
smallest = min(f["weight"] for f in findings)
assert smallest <= 8, f"smallest shrunk reproducer weight {smallest} > 8"
print(f"sabotage drill ok: {len(findings)} findings, "
      f"smallest shrunk reproducer weight {smallest}")
PY
rm -rf "$conf_tmp"

echo "== scale: quotient-session golden, E16 asymptote gate, dirty-SCC drill =="
scale_tmp="$(mktemp -d)"
# The redefine-heavy session golden pins the quotient cache's wire
# behavior (hits, invalidations, dirty/clean SCC counters in stats)
# at any worker count.
for t in 1 8; do
  echo "-- sld quotient-session transcript (SL_THREADS=$t)"
  SL_THREADS=$t ./target/release/sld --stdin < scripts/quotient_session.jsonl \
    > "$scale_tmp/quotient_t$t.out"
  cmp "$scale_tmp/quotient_t$t.out" scripts/quotient_session.golden
done
# E16: the scale sweep. The binary fails itself if the engines disagree
# on any padded pair, an advance diverges from a scratch quotient, or
# the asymptote inverts; the JSON gate re-checks the medians
# independently. The eager 10^4 point is a single timed call (minutes
# of refinement over the raw candidate relation), so this is the one
# bench stage that is minutes, not seconds.
echo "-- e16_scale (asymptote + redefine-reuse gate, ~3 min)"
SL_BENCH_SAMPLES=3 SL_BENCH_WARMUP_MS=10 SL_BENCH_JSON_DIR="$scale_tmp" \
  ./target/release/e16_scale
python3 - "$scale_tmp/BENCH_scale.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["suite"] == "scale", doc
records = {r["name"]: r for r in doc["records"]}
for name, r in records.items():
    assert r["median_ns"] > 0 and r["samples"] > 0, (name, r)
# The eager 10^4 point must be the honest single observation.
assert records["incl/eager/struct/10000"]["samples"] == 1, records
# On-the-fly beats eager at >=10^4 states, by a factor that grows.
speed = {n: records[f"incl/eager/struct/{n}"]["median_ns"]
            / records[f"incl/lazy/struct/{n}"]["median_ns"]
         for n in (1000, 10000)}
assert speed[10000] > 1, f"lazy loses to eager at 10^4: {speed[10000]:.2f}x"
assert speed[10000] >= 2 * speed[1000], \
    f"lazy advantage not growing: {speed[1000]:.0f}x at 10^3, {speed[10000]:.0f}x at 10^4"
# The padding-immunity bar: lazy over 10^5 raw states still beats
# eager over 10^3.
assert records["incl/lazy/rand/100000"]["median_ns"] \
    < records["incl/eager/rand/1000"]["median_ns"], records
# The quotient-reuse bar on the redefine-heavy session.
scratch = records["redefine/scratch/chain1000"]["median_ns"]
incr = records["redefine/incremental/chain1000"]["median_ns"]
assert incr < scratch, f"incremental ({incr}ns) loses to scratch ({scratch}ns)"
print(f"BENCH_scale.json ok: lazy over eager {speed[1000]:.0f}x at 10^3 -> "
      f"{speed[10000]:.0f}x at 10^4, redefine reuse {scratch / incr:.1f}x")
PY
# Sabotage drill: with per-SCC dirty tracking deliberately broken the
# three-way engine matrix must catch the stale-quotient bug (exit 1)
# and shrink the reproducer.
echo "-- sabotage drill (dirty-scc-invalidation)"
if ./target/release/slfuzz --seed 2003 --cases 200 --oracle incl3 \
     --sabotage dirty-scc-invalidation --stable \
     --stats "$scale_tmp/sabotage_scc.json" > /dev/null 2>&1; then
  echo "sabotage drill NOT caught: slfuzz exited 0 with broken dirty tracking" >&2
  exit 1
fi
python3 - "$scale_tmp/sabotage_scc.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
findings = doc["findings"]
assert findings, "dirty-scc sabotage run produced no findings"
smallest = min(f["weight"] for f in findings)
assert smallest <= 8, f"smallest shrunk reproducer weight {smallest} > 8"
print(f"dirty-scc sabotage drill ok: {len(findings)} findings, "
      f"smallest shrunk reproducer weight {smallest}")
PY
rm -rf "$scale_tmp"

echo "== pdr: check golden, E15 gate, pdr-oracle fuzz, sabotage drill =="
pdr_tmp="$(mktemp -d)"
# The check-verb golden transcript must be byte-identical at any worker
# count: check is a pure query, cached and unjournaled, so the wire
# behavior cannot depend on the pool.
for t in 1 8; do
  echo "-- sld check transcript (SL_THREADS=$t)"
  SL_THREADS=$t ./target/release/sld --stdin < scripts/check_session.jsonl \
    > "$pdr_tmp/check_t$t.out"
  cmp "$pdr_tmp/check_t$t.out" scripts/check_session.golden
done
# E15 smoke: the binary fails itself if PDR and deepening BMC disagree
# on any sweep size, a certificate fails replay, or PDR loses the
# 12-bit point; the JSON gate re-checks the medians independently.
echo "-- e15_pdr (smoke)"
SL_BENCH_SAMPLES=5 SL_BENCH_WARMUP_MS=10 SL_BENCH_JSON_DIR="$pdr_tmp" \
  ./target/release/e15_pdr
python3 - "$pdr_tmp/BENCH_pdr.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["suite"] == "pdr", doc
records = {r["name"]: r for r in doc["records"]}
for name, r in records.items():
    assert r["median_ns"] > 0 and r["samples"] > 0, (name, r)
sizes = sorted(int(n.rsplit("/", 1)[1]) for n in records
               if n.startswith("pdr/fenced/"))
big = [n for n in sizes if n >= 1 << 12]
assert big, f"sweep never reached the 12-bit point: {sizes}"
for n in big:
    pdr = records[f"pdr/fenced/{n}"]["median_ns"]
    bmc = records[f"bmc/fenced/{n}"]["median_ns"]
    assert pdr < bmc, f"PDR ({pdr}ns) loses to deepening BMC ({bmc}ns) at n={n}"
top = max(big)
speedup = records[f"bmc/fenced/{top}"]["median_ns"] / records[f"pdr/fenced/{top}"]["median_ns"]
print(f"BENCH_pdr.json ok: PDR beats deepening BMC {speedup:.0f}x at n={top}")
PY
# The pdr oracle re-runs isolated so a PDR regression is named as such:
# corpus replay plus a fixed-seed differential sweep against the
# independent BMC reference.
echo "-- pdr-oracle corpus + fixed-seed sweep (1000 cases)"
./target/release/slfuzz --seed 2003 --cases 1000 --oracle pdr \
  --corpus scripts/conform_corpus.jsonl
# Sabotage drill: with the relative-induction check deliberately broken
# the fuzzer must catch the bug (exit 1) and shrink the reproducer.
echo "-- sabotage drill (pdr-relative-induction)"
if ./target/release/slfuzz --seed 2003 --cases 200 --oracle pdr \
     --sabotage pdr-relative-induction --stable \
     --stats "$pdr_tmp/sabotage_pdr.json" > /dev/null 2>&1; then
  echo "sabotage drill NOT caught: slfuzz exited 0 with broken relative induction" >&2
  exit 1
fi
python3 - "$pdr_tmp/sabotage_pdr.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
findings = doc["findings"]
assert findings, "pdr sabotage run produced no findings"
smallest = min(f["weight"] for f in findings)
assert smallest <= 10, f"smallest shrunk reproducer weight {smallest} > 10"
print(f"pdr sabotage drill ok: {len(findings)} findings, "
      f"smallest shrunk reproducer weight {smallest}")
PY
rm -rf "$pdr_tmp"

echo "== persist: crash drill, recovery corpus, E14 smoke =="
# The acceptance drill for the durability layer: a 200+-request seeded
# session, killed at every journal record boundary and once more
# mid-record (journal truncated), must recover byte-identically to an
# uninterrupted twin — at both worker counts, since recovery rebuilds
# the batch fan-out.
for t in 1 8; do
  echo "-- crash drill (SL_THREADS=$t)"
  SL_THREADS=$t cargo test -q --offline --release --test crash_recovery
done
# Shrunk recovery reproducers replay with the rest of the corpus above;
# this re-run isolates the crash oracle so a persistence regression is
# named as such.
echo "-- crash-oracle corpus + fixed-seed sweep"
./target/release/slfuzz --seed 2003 --cases 200 --oracle crash \
  --corpus scripts/conform_corpus.jsonl
# E14 smoke: the binary fails itself if a recovered daemon diverges
# from its twin or snapshots stop bounding the replay.
persist_tmp="$(mktemp -d)"
echo "-- e14_crash_recovery (smoke)"
SL_BENCH_SAMPLES=5 SL_BENCH_WARMUP_MS=10 SL_BENCH_JSON_DIR="$persist_tmp" \
  ./target/release/e14_crash_recovery
python3 - "$persist_tmp/BENCH_persist.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["suite"] == "persist", doc
records = {r["name"]: r for r in doc["records"]}
for name in ("persist/recover/journal_only", "persist/recover/snap64",
             "persist/recover/snap512"):
    r = records[name]
    assert r["median_ns"] > 0 and r["samples"] > 0, (name, r)
full = records["persist/recover/journal_only"]["median_ns"]
snap = records["persist/recover/snap64"]["median_ns"]
assert snap <= full, f"snapshot recovery ({snap}ns) slower than full replay ({full}ns)"
replayed = 1200  # e14 journals 1200 requests under interval 0
print(f"BENCH_persist.json ok: snapshot recovery {full / snap:.1f}x faster, "
      f"journal replay {replayed / (full / 1e9):,.0f} records/sec")
PY
rm -rf "$persist_tmp"

echo "== fault-injection smoke (SL_FAULT_RATE=0.05, seeded) =="
# The same tier-1 suite and sweeps must pass *via degradation* while a
# deterministic fault plan poisons the instrumented sites.
SL_FAULT_RATE=0.05 SL_FAULT_SEED=2003 cargo test -q --offline
for exp in e4_decomposition e9_extremal e10_closure_ablation; do
  echo "-- $exp (fault drill)"
  SL_FAULT_RATE=0.05 SL_FAULT_SEED=2003 "./target/release/$exp"
done

echo "== thread-count determinism (E4 at SL_THREADS=1,2,8) =="
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
for t in 1 2 8; do
  SL_THREADS=$t ./target/release/e4_decomposition > "$tmpdir/e4_t$t.txt"
done
cmp "$tmpdir/e4_t1.txt" "$tmpdir/e4_t2.txt"
cmp "$tmpdir/e4_t1.txt" "$tmpdir/e4_t8.txt"
echo "E4 output byte-identical at SL_THREADS=1,2,8"

echo "verify.sh: all green"
