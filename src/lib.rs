//! # safety-liveness
//!
//! An executable, full-stack reproduction of
//!
//! > Panagiotis Manolios and Richard Trefler. *A Lattice-Theoretic
//! > Characterization of Safety and Liveness.* PODC 2003.
//!
//! The paper unifies the classical characterizations of safety and
//! liveness — Alpern–Schneider's topological one for linear time,
//! Gumm's σ-complete Boolean algebras, and the authors' own
//! branching-time account — under a single lattice-theoretic umbrella:
//! in any **modular complemented lattice** with a **lattice closure**
//! `cl`, every element decomposes as the meet of a *cl-safety* element
//! (`a = cl.a`) and a *cl-liveness* element (`cl.a = 1`).
//!
//! This workspace makes every framework the paper quantifies over
//! executable:
//!
//! * [`lattice`] — finite lattices, closure operators, and the
//!   decomposition/extremal theorems (Theorems 2–7, Figures 1–2).
//! * [`omega`] — ω-words in canonical lasso form.
//! * [`ltl`] — LTL with exact lasso semantics and a tableau translation
//!   to Büchi automata.
//! * [`buchi`] — Büchi automata with the closure operator, Boolean
//!   operations, complementation, exact safety/liveness deciders, the
//!   Alpern–Schneider decomposition, and Schneider security monitors.
//! * [`games`] — parity and Rabin games (Zielonka, index appearance
//!   records).
//! * [`trees`] — the branching-time framework: tree concatenation and
//!   prefix order, regular trees, CTL(+limits), and the closures
//!   `ncl`/`fcl`.
//! * [`rabin`] — Rabin tree automata with game-based membership,
//!   emptiness, and the `rfcl` closure (Theorem 9).
//! * [`pdr`] — lattice-generic property-directed reachability (LT-PDR)
//!   over Kripke structures, deciding `AG !bad` directly and `FG !bad`
//!   via the k-liveness counter reduction, every verdict backed by a
//!   machine-checked certificate.
//! * [`service`] — the serving layer: `sld`, a long-running query
//!   daemon speaking newline-delimited JSON (define/classify/
//!   decompose/include/monitor-step/check/...), with batched fan-out,
//!   memoized results, per-request budgets, and fault drills.
//!
//! ## Quick start: decompose an LTL property
//!
//! ```
//! use safety_liveness::buchi::{decompose, classify, Classification};
//! use safety_liveness::ltl::{parse, translate};
//! use safety_liveness::omega::Alphabet;
//!
//! let sigma = Alphabet::ab();
//! // Rem's p3: neither safe nor live ...
//! let p3 = translate(&sigma, &parse(&sigma, "a & F !a")?);
//! assert_eq!(classify(&p3)?, Classification::Neither);
//! // ... but it splits into a safety and a liveness automaton.
//! let d = decompose(&p3);
//! assert_eq!(d.check_sampled(&p3, 3, 3), None);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub use sl_buchi as buchi;
pub use sl_games as games;
pub use sl_lattice as lattice;
pub use sl_ltl as ltl;
pub use sl_omega as omega;
pub use sl_pdr as pdr;
pub use sl_rabin as rabin;
pub use sl_service as service;
pub use sl_trees as trees;
